// Lifecycle, determinism, and corruption-injection tests for the
// work-stealing common::ThreadPool — the suite the TSan CI leg runs with
// real concurrency. Covers the inline (single-thread) degradation, Submit
// rejection after Shutdown, deterministic ParallelFor/ParallelMap result
// order, lowest-chunk-wins exception propagation, nested ParallelFor
// running inline on a worker, work stealing draining the queue behind a
// blocked worker, and the pool's own AuditInvariants() both passing under
// heavy traffic and firing on an injected accounting corruption.

#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace qoco::common {

// Friend of ThreadPool (declared in thread_pool.h): simulates the effect of
// a torn/lost counter update so the audit's accounting cross-check fires
// without an actual data race (the suite must stay TSan-clean).
struct ThreadPoolCorruptor {
  static void InjectPhantomCompletion(ThreadPool* pool) {
    MutexLock lk(pool->wake_mu_);
    ++pool->completed_total_;
  }
};

namespace {

TEST(ThreadPoolInline, SingleThreadPoolRunsSubmitOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_FALSE(pool.OnWorkerThread());
  std::thread::id ran_on;
  ASSERT_TRUE(pool.Submit([&] { ran_on = std::this_thread::get_id(); }).ok());
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  pool.Wait();  // Trivially satisfied; must not hang.
  EXPECT_TRUE(pool.AuditInvariants().ok());
}

TEST(ThreadPoolInline, ParallelForIsASerialLoop) {
  ThreadPool pool(1);
  std::vector<size_t> visits;
  pool.ParallelFor(10, [&](size_t i) { visits.push_back(i); });
  std::vector<size_t> want(10);
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(visits, want);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  // Distinct slots per index: no synchronization needed by the contract.
  pool.ParallelFor(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
  EXPECT_TRUE(pool.AuditInvariants().ok());
}

TEST(ThreadPool, ParallelMapPlacesResultsAtTheirIndex) {
  ThreadPool pool(8);
  std::vector<size_t> out =
      pool.ParallelMap<size_t>(257, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i) << "index " << i;
  }
}

TEST(ThreadPool, WaitBlocksUntilSubmittedWorkDrains) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
                      std::this_thread::sleep_for(std::chrono::microseconds(50));
                      counter.fetch_add(1, std::memory_order_relaxed);
                    })
                    .ok());
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
  EXPECT_TRUE(pool.AuditInvariants().ok());
}

TEST(ThreadPool, SubmitAfterShutdownIsRejectedWithFailedPrecondition) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); })
            .ok());
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 8) << "Shutdown must drain queued work";
  Status rejected = pool.Submit([] {});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  pool.Shutdown();  // Idempotent.
  EXPECT_TRUE(pool.AuditInvariants().ok());
}

TEST(ThreadPool, ParallelForAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::vector<size_t> visits;
  pool.ParallelFor(5, [&](size_t i) { visits.push_back(i); });
  EXPECT_EQ(visits, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ExceptionFromLowestThrowingIndexWins) {
  ThreadPool pool(4);
  // Indexes 5 and 50 both throw. Chunks are contiguous ascending ranges
  // and the error from the lowest chunk wins (serial order within a
  // chunk), so the rethrown exception always carries index 5 — regardless
  // of thread count, chunking, or which chunk finishes first.
  std::atomic<int> executed{0};
  try {
    pool.ParallelFor(64, [&](size_t i) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 5 || i == 50) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 5");
  }
  // Every chunk still ran to its own completion or first error before the
  // rethrow: the pool is reusable afterwards.
  std::vector<int> hits(16, 0);
  pool.ParallelFor(16, [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_TRUE(pool.AuditInvariants().ok());
}

TEST(ThreadPool, NestedParallelForRunsInlineOnTheWorker) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 8;
  std::vector<std::vector<size_t>> inner_orders(kOuter);
  std::vector<int> on_worker(kOuter, 0);
  pool.ParallelFor(kOuter, [&](size_t o) {
    on_worker[o] = pool.OnWorkerThread() ? 1 : 0;
    // Nested call: must run inline (serial, deadlock-free) on this worker.
    pool.ParallelFor(kInner,
                     [&](size_t i) { inner_orders[o].push_back(i); });
  });
  std::vector<size_t> want(kInner);
  std::iota(want.begin(), want.end(), 0u);
  for (size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(on_worker[o], 1) << "outer body " << o;
    EXPECT_EQ(inner_orders[o], want) << "outer body " << o;
  }
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPool, StealingDrainsWorkQueuedBehindABlockedTask) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool blocker_started = false;
  // The blocker parks one worker. Submit round-robins across the two
  // worker queues, so some of the quick tasks land behind the blocker;
  // they can only finish if the free worker steals them.
  ASSERT_TRUE(pool.Submit([&] {
                    std::unique_lock<std::mutex> lk(mu);
                    blocker_started = true;
                    cv.notify_all();
                    cv.wait(lk, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return blocker_started; });
  }
  std::atomic<int> quick_done{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        pool.Submit([&] { quick_done.fetch_add(1, std::memory_order_relaxed); })
            .ok());
  }
  // All 10 quick tasks must complete while the blocker still holds its
  // worker. Generous deadline; normally finishes in microseconds.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (quick_done.load() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(quick_done.load(), 10)
      << "free worker failed to steal from the blocked worker's queue";
  {
    std::unique_lock<std::mutex> lk(mu);
    release = true;
    cv.notify_all();
  }
  pool.Wait();
  EXPECT_TRUE(pool.AuditInvariants().ok());
}

TEST(ThreadPool, AuditPassesUnderConcurrentTraffic) {
  ThreadPool pool(4);
  std::atomic<int> sink{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(
        64, [&](size_t) { sink.fetch_add(1, std::memory_order_relaxed); });
    // Audit between waves, at a quiescent point — the merge-barrier
    // placement the cleaning loops use.
    ASSERT_TRUE(pool.AuditInvariants().ok());
  }
  EXPECT_EQ(sink.load(), 20 * 64);
}

TEST(ThreadPoolAudit, InjectedAccountingCorruptionFires) {
  ThreadPool pool(2);
  std::atomic<int> sink{0};
  pool.ParallelFor(
      32, [&](size_t) { sink.fetch_add(1, std::memory_order_relaxed); });
  ASSERT_TRUE(pool.AuditInvariants().ok());
  // A phantom completion breaks submitted == completed + running + pending.
  ThreadPoolCorruptor::InjectPhantomCompletion(&pool);
  Status audit = pool.AuditInvariants();
  ASSERT_FALSE(audit.ok());
  EXPECT_EQ(audit.code(), StatusCode::kInternal);
  EXPECT_NE(audit.message().find("accounting"), std::string::npos) << audit.message();
}

TEST(ThreadPoolResolve, ExplicitRequestWinsOverEverything) {
  ::setenv("QOCO_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(5), 5u);
  ::unsetenv("QOCO_THREADS");
}

TEST(ThreadPoolResolve, EnvVariableDrivesTheDefault) {
  ::setenv("QOCO_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(0), 3u);
  ::unsetenv("QOCO_THREADS");
}

TEST(ThreadPoolResolve, GarbageEnvFallsBackAndNeverReturnsZero) {
  ::setenv("QOCO_THREADS", "not-a-number", /*overwrite=*/1);
  EXPECT_GE(ThreadPool::ResolveNumThreads(0), 1u);
  ::setenv("QOCO_THREADS", "0", /*overwrite=*/1);
  EXPECT_GE(ThreadPool::ResolveNumThreads(0), 1u);
  ::unsetenv("QOCO_THREADS");
  EXPECT_GE(ThreadPool::ResolveNumThreads(0), 1u);
}

}  // namespace
}  // namespace qoco::common
