// DBGroup scenario (Section 7.1): monitor the views behind a research
// group's periodic grant report and repair the record-keeping database
// when the report queries surface wrong or missing rows.
//
// Demonstrates QOCO's intended deployment: the database is curated and
// mostly correct, the report queries are the "trigger" views, and a small
// crowd of group members acts as the oracle.
//
// Build & run:  ./build/examples/dbgroup_report

#include <cstdio>

#include "src/cleaning/cleaner.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/query/evaluator.h"
#include "src/workload/dbgroup.h"

int main() {
  using namespace qoco;  // NOLINT(build/namespaces): example code.

  auto data_or = workload::MakeDbGroupData(workload::DbGroupParams{});
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  workload::DbGroupData data = std::move(data_or).value();
  std::printf("DBGroup database: %zu tuples\n", data.dirty->TotalFacts());

  const char* kDescriptions[] = {
      "keynotes and tutorials on topics related to ERC",
      "current group members financed by ERC",
      "students at ERC-sponsored conferences in the past 30 months",
      "publications on crowdsourcing published in the last 30 months",
  };

  crowd::SimulatedOracle oracle(data.ground_truth.get());
  relational::Database db = *data.dirty;
  for (size_t i = 0; i < data.report_queries.size(); ++i) {
    const query::CQuery& q = data.report_queries[i];
    std::printf("\n-- Report query Q%zu: %s\n   %s\n", i + 1,
                kDescriptions[i], q.ToString(*data.catalog).c_str());

    query::Evaluator before(&db);
    std::printf("   rows before cleaning: %zu\n",
                before.Evaluate(q).size());

    crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
    cleaning::QocoCleaner cleaner(q, &db, &panel, cleaning::CleanerConfig{},
                                  common::Rng(12));
    auto stats_or = cleaner.Run();
    if (!stats_or.ok()) {
      std::fprintf(stderr, "%s\n", stats_or.status().ToString().c_str());
      return 1;
    }
    const cleaning::CleanerStats& stats = *stats_or;
    std::printf("   discovered %zu wrong, %zu missing answers\n",
                stats.wrong_answers_removed, stats.missing_answers_added);
    for (const cleaning::Edit& e : stats.edits) {
      std::printf("   edit: %s\n", cleaning::EditToString(e, db).c_str());
    }
    query::Evaluator after(&db);
    std::printf("   rows after cleaning: %zu\n", after.Evaluate(q).size());
  }

  std::printf("\nfinal |D delta DG| = %zu (started at %zu)\n",
              db.Distance(*data.ground_truth),
              data.dirty->Distance(*data.ground_truth));
  return 0;
}
