// Soccer scenario: clean a realistically dirtied World Cup database with a
// crowd of imperfect experts.
//
// Generates the ~4000-fact synthetic Soccer ground truth, derives a dirty
// instance by planting 5 wrong and 5 missing answers for query Q3
// ("non-Asian teams that reached the knockout phase and won there"), and
// repairs the view with a five-member expert panel (10% per-question error
// rate, majority vote of 3). Prints the per-phase progress and the final
// verification against the ground truth.
//
// Build & run:  ./build/examples/soccer_cleaning [expert_error_rate]

#include <cstdio>
#include <cstdlib>

#include "src/cleaning/cleaner.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/imperfect_oracle.h"
#include "src/query/evaluator.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

int main(int argc, char** argv) {
  using namespace qoco;  // NOLINT(build/namespaces): example code.

  double error_rate = argc > 1 ? std::atof(argv[1]) : 0.1;

  auto data_or = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  workload::SoccerData data = std::move(data_or).value();
  auto q_or = workload::SoccerQuery(3, *data.catalog);
  if (!q_or.ok()) return 1;
  const query::CQuery& q = *q_or;

  std::printf("Soccer ground truth: %zu facts\n",
              data.ground_truth->TotalFacts());
  std::printf("Q3 = %s\n", q.ToString(*data.catalog).c_str());

  auto planted_or =
      workload::PlantErrors(q, *data.ground_truth, 5, 5, /*seed=*/2023);
  if (!planted_or.ok()) return 1;
  workload::PlantedErrors planted = std::move(planted_or).value();
  std::printf("\nPlanted %zu wrong answers:", planted.wrong.size());
  for (const relational::Tuple& t : planted.wrong) {
    std::printf(" %s", relational::TupleToString(t).c_str());
  }
  std::printf("\nPlanted %zu missing answers:", planted.missing.size());
  for (const relational::Tuple& t : planted.missing) {
    std::printf(" %s", relational::TupleToString(t).c_str());
  }
  std::printf("\n|D delta DG| before cleaning: %zu\n",
              planted.db.Distance(*data.ground_truth));

  // A crowd of five imperfect experts; closed questions decided by a
  // majority among 3 sampled members.
  std::vector<std::unique_ptr<crowd::Oracle>> experts;
  std::vector<crowd::Oracle*> members;
  for (uint64_t i = 0; i < 5; ++i) {
    experts.push_back(std::make_unique<crowd::ImperfectOracle>(
        data.ground_truth.get(), error_rate, /*seed=*/1000 + i));
    members.push_back(experts.back().get());
  }
  crowd::CrowdPanel panel(members, crowd::PanelConfig{/*sample_size=*/3});

  relational::Database db = planted.db;
  cleaning::CleanerConfig config;
  config.insertion.strategy = cleaning::SplitStrategy::kProvenance;
  config.enumeration_nulls_to_stop = 2;
  cleaning::QocoCleaner cleaner(q, &db, &panel, config, common::Rng(7));
  auto stats_or = cleaner.Run();
  if (!stats_or.ok()) {
    std::fprintf(stderr, "%s\n", stats_or.status().ToString().c_str());
    return 1;
  }
  const cleaning::CleanerStats& stats = *stats_or;

  std::printf("\nSession (expert error rate %.0f%%):\n", error_rate * 100);
  std::printf("  iterations: %zu, edits: %zu (%zu wrong removed, %zu "
              "missing added)\n",
              stats.iterations, stats.edits.size(),
              stats.wrong_answers_removed, stats.missing_answers_added);
  std::printf("  crowd interactions: %s\n",
              crowd::ToString(stats.questions).c_str());

  query::Evaluator cleaned(&db);
  query::Evaluator truth(data.ground_truth.get());
  std::vector<relational::Tuple> got = cleaned.Evaluate(q).AnswerTuples();
  std::vector<relational::Tuple> want = truth.Evaluate(q).AnswerTuples();
  std::printf("\n|D delta DG| after cleaning: %zu\n",
              db.Distance(*data.ground_truth));
  std::printf("view repaired: %s (Q(D') has %zu answers, Q(DG) has %zu)\n",
              got == want ? "yes" : "NO (imperfect experts left residue)",
              got.size(), want.size());
  return 0;
}
