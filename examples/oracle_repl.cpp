// Interactive oracle: YOU play the domain expert.
//
// Loads the Figure 1 World Cup sample and cleans Q1 ("European teams that
// won the World Cup at least twice"), asking every crowd question on
// stdin. Answer y/n for boolean questions and provide values for
// completion tasks. On EOF (or when run non-interactively) the session
// falls back to the built-in ground truth, so the example always runs to
// completion.
//
// Build & run:  ./build/examples/oracle_repl

#include <cstdio>
#include <iostream>
#include <string>

#include "src/cleaning/cleaner.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/query/evaluator.h"
#include "src/workload/figure_one.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): example code.

/// An oracle that asks the user on stdin and falls back to the ground
/// truth after EOF.
class StdinOracle : public crowd::Oracle {
 public:
  StdinOracle(const relational::Database* ground_truth,
              const relational::Catalog* catalog)
      : fallback_(ground_truth), catalog_(catalog) {}

  bool IsFactTrue(const relational::Fact& fact) override {
    std::optional<bool> answer = AskYesNo(
        "Is the fact " + fallback_.ground_truth().FactToString(fact) +
        " true?");
    return answer.value_or(fallback_.IsFactTrue(fact));
  }

  bool IsAnswerTrue(const query::CQuery& q,
                    const relational::Tuple& t) override {
    std::optional<bool> answer = AskYesNo(
        "Is " + relational::TupleToString(t) +
        " a correct answer of the query?");
    return answer.value_or(fallback_.IsAnswerTrue(q, t));
  }

  bool IsAnswerTrue(const query::UnionQuery& q,
                    const relational::Tuple& t) override {
    std::optional<bool> answer = AskYesNo(
        "Is " + relational::TupleToString(t) +
        " a correct answer of the union query?");
    return answer.value_or(fallback_.IsAnswerTrue(q, t));
  }

  std::optional<relational::Tuple> MissingAnswer(
      const query::UnionQuery& q,
      const std::vector<relational::Tuple>& current) override {
    return fallback_.MissingAnswer(q, current);
  }

  std::optional<query::Assignment> Complete(
      const query::CQuery& q, const query::Assignment& partial) override {
    if (eof_) return fallback_.Complete(q, partial);
    std::printf("\nCompletion task. Query body: %s\n",
                q.ToString(*catalog_).c_str());
    std::printf("Partial assignment: %s\n",
                partial.ToString(q).c_str());
    std::optional<bool> satisfiable =
        AskYesNo("Can this be completed into a true witness?");
    if (!satisfiable.has_value()) return fallback_.Complete(q, partial);
    if (!*satisfiable) return std::nullopt;
    query::Assignment result = partial;
    for (query::VarId v : q.BodyVars()) {
      if (result.IsBound(v)) continue;
      std::printf("  value for %s: ", q.var_name(v).c_str());
      std::fflush(stdout);
      std::string line;
      if (!std::getline(std::cin, line)) {
        eof_ = true;
        return fallback_.Complete(q, partial);
      }
      result.Bind(v, relational::Value(line));
    }
    return result;
  }

  std::optional<relational::Tuple> MissingAnswer(
      const query::CQuery& q,
      const std::vector<relational::Tuple>& current) override {
    if (eof_) return fallback_.MissingAnswer(q, current);
    std::printf("\nThe current query result is:");
    for (const relational::Tuple& t : current) {
      std::printf(" %s", relational::TupleToString(t).c_str());
    }
    std::optional<bool> missing = AskYesNo("\nIs any answer missing?");
    if (!missing.has_value()) return fallback_.MissingAnswer(q, current);
    if (!*missing) return std::nullopt;
    std::printf("  missing answer value: ");
    std::fflush(stdout);
    std::string line;
    if (!std::getline(std::cin, line)) {
      eof_ = true;
      return fallback_.MissingAnswer(q, current);
    }
    return relational::Tuple{relational::Value(line)};
  }

 private:
  std::optional<bool> AskYesNo(const std::string& prompt) {
    if (eof_) return std::nullopt;
    while (true) {
      std::printf("%s [y/n] ", prompt.c_str());
      std::fflush(stdout);
      std::string line;
      if (!std::getline(std::cin, line)) {
        eof_ = true;
        std::printf("(EOF - falling back to the built-in ground truth)\n");
        return std::nullopt;
      }
      if (line == "y" || line == "Y") return true;
      if (line == "n" || line == "N") return false;
    }
  }

  crowd::SimulatedOracle fallback_;
  const relational::Catalog* catalog_;
  bool eof_ = false;
};

}  // namespace

int main() {
  auto sample_or = workload::MakeFigureOneSample();
  if (!sample_or.ok()) {
    std::fprintf(stderr, "%s\n", sample_or.status().ToString().c_str());
    return 1;
  }
  workload::FigureOneSample sample = std::move(sample_or).value();

  std::printf("You are the oracle for the World Cup database of Figure 1.\n");
  std::printf("Query: %s\n", sample.q1.ToString(*sample.catalog).c_str());
  std::printf("(answers: European teams that won at least two finals)\n");

  StdinOracle oracle(sample.ground_truth.get(), sample.catalog.get());
  crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
  relational::Database db = *sample.dirty;
  cleaning::QocoCleaner cleaner(sample.q1, &db, &panel,
                                cleaning::CleanerConfig{}, common::Rng(1));
  auto stats_or = cleaner.Run();
  if (!stats_or.ok()) {
    std::fprintf(stderr, "%s\n", stats_or.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSession complete. Edits applied:\n");
  for (const cleaning::Edit& e : stats_or->edits) {
    std::printf("  %s\n", cleaning::EditToString(e, db).c_str());
  }
  query::Evaluator eval(&db);
  std::printf("Final result:");
  for (const relational::Tuple& t :
       eval.Evaluate(sample.q1).AnswerTuples()) {
    std::printf(" %s", relational::TupleToString(t).c_str());
  }
  std::printf("\n");
  return 0;
}
