// Quickstart: the paper's running example end to end.
//
// Builds the Figure 1 World Cup sample (a dirty database D and its ground
// truth DG), evaluates Q1 ("European teams that won the World Cup at least
// twice"), inspects the provenance of the wrong answer (ESP), and lets
// QOCO repair the database through a simulated oracle, printing every
// crowd interaction outcome and edit.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "src/cleaning/cleaner.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/query/evaluator.h"
#include "src/workload/figure_one.h"

int main() {
  using namespace qoco;  // NOLINT(build/namespaces): example code.

  // 1. Build the Figure 1 sample: catalog + dirty D + ground truth DG.
  auto sample_or = workload::MakeFigureOneSample();
  if (!sample_or.ok()) {
    std::fprintf(stderr, "%s\n", sample_or.status().ToString().c_str());
    return 1;
  }
  workload::FigureOneSample sample = std::move(sample_or).value();
  std::printf("Dirty database D: %zu facts; ground truth DG: %zu facts\n",
              sample.dirty->TotalFacts(), sample.ground_truth->TotalFacts());

  // 2. Evaluate Q1 over D with provenance.
  std::printf("\nQ1 = %s\n", sample.q1.ToString(*sample.catalog).c_str());
  query::Evaluator evaluator(sample.dirty.get());
  query::EvalResult result = evaluator.Evaluate(sample.q1);
  for (const query::AnswerInfo& answer : result.answers()) {
    std::printf("answer %s with %zu witnesses:\n",
                relational::TupleToString(answer.tuple).c_str(),
                answer.witnesses.size());
    for (const provenance::Witness& w : answer.witnesses) {
      std::printf("  %s\n", w.ToString(*sample.dirty).c_str());
    }
  }

  // 3. Clean D against Q1 with a crowd of one perfect (simulated) oracle.
  crowd::SimulatedOracle oracle(sample.ground_truth.get());
  crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{/*sample_size=*/1});
  relational::Database db = *sample.dirty;
  cleaning::QocoCleaner cleaner(sample.q1, &db, &panel,
                                cleaning::CleanerConfig{}, common::Rng(42));
  auto stats_or = cleaner.Run();
  if (!stats_or.ok()) {
    std::fprintf(stderr, "%s\n", stats_or.status().ToString().c_str());
    return 1;
  }
  const cleaning::CleanerStats& stats = *stats_or;

  std::printf("\nCleaning session finished in %zu iteration(s):\n",
              stats.iterations);
  std::printf("  wrong answers removed: %zu, missing answers added: %zu\n",
              stats.wrong_answers_removed, stats.missing_answers_added);
  std::printf("  crowd interactions: %s\n",
              crowd::ToString(stats.questions).c_str());
  std::printf("  edits applied:\n");
  for (const cleaning::Edit& edit : stats.edits) {
    std::printf("    %s\n", cleaning::EditToString(edit, db).c_str());
  }

  // 4. The repaired view now matches the ground truth view.
  query::Evaluator cleaned_eval(&db);
  std::printf("\nQ1 over repaired D:");
  for (const relational::Tuple& t :
       cleaned_eval.Evaluate(sample.q1).AnswerTuples()) {
    std::printf(" %s", relational::TupleToString(t).c_str());
  }
  std::printf("\nQ1 over ground truth:");
  query::Evaluator truth_eval(sample.ground_truth.get());
  for (const relational::Tuple& t :
       truth_eval.Evaluate(sample.q1).AnswerTuples()) {
    std::printf(" %s", relational::TupleToString(t).c_str());
  }
  std::printf("\n");
  return 0;
}
