// File-driven cleaning CLI: load a dirty database and its reference
// (ground-truth) database from QOCO's multi-relation CSV format, parse a
// query from the command line, clean, and write the repaired database
// back out.
//
// Usage:
//   csv_cleaning_cli <schema+dirty.csv> <truth.csv> '<query>' [out.csv]
//
// The CSV format is the one produced by relational::DatabaseToCsv: blocks
// introduced by "## <RelationName>" followed by a header row and data
// rows. The schema is derived from the header rows of the *first* file.
//
// With no arguments, a self-contained demo runs on the paper's Figure 1
// sample: the sample is written to temporary CSV files, loaded back, and
// cleaned — so the example is always runnable.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/cleaning/cleaner.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/query/evaluator.h"
#include "src/query/parser.h"
#include "src/relational/csv.h"
#include "src/workload/figure_one.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): example code.

common::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return common::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Derives a catalog from the "## Name" blocks and header rows of a CSV
/// database dump.
common::Result<relational::Catalog> CatalogFromCsv(const std::string& text) {
  relational::Catalog catalog;
  std::vector<std::string> lines = common::Split(text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = common::StripWhitespace(lines[i]);
    if (!common::StartsWith(line, "## ")) continue;
    std::string name(common::StripWhitespace(line.substr(3)));
    if (i + 1 >= lines.size()) {
      return common::Status::ParseError("relation '" + name +
                                        "' has no header row");
    }
    std::vector<std::string> attrs;
    for (const std::string& piece : common::Split(lines[i + 1], ',')) {
      attrs.emplace_back(common::StripWhitespace(piece));
    }
    QOCO_RETURN_NOT_OK(catalog.AddRelation(name, std::move(attrs)).status());
  }
  return catalog;
}

int RunSession(const relational::Catalog& catalog,
               relational::Database* dirty,
               const relational::Database& truth,
               const std::string& query_text, const char* out_path) {
  auto q = query::ParseQuery(query_text, catalog);
  if (!q.ok()) {
    std::fprintf(stderr, "query: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", q->ToString(catalog).c_str());

  crowd::SimulatedOracle oracle(&truth);
  crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
  cleaning::QocoCleaner cleaner(*q, dirty, &panel, cleaning::CleanerConfig{},
                                common::Rng(1));
  auto stats = cleaner.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "clean: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("removed %zu wrong / added %zu missing answers with %zu "
              "edits; crowd: %s\n",
              stats->wrong_answers_removed, stats->missing_answers_added,
              stats->edits.size(),
              crowd::ToString(stats->questions).c_str());
  for (const cleaning::Edit& e : stats->edits) {
    std::printf("  %s\n", cleaning::EditToString(e, *dirty).c_str());
  }
  if (out_path != nullptr) {
    std::ofstream out(out_path);
    out << relational::DatabaseToCsv(*dirty);
    std::printf("repaired database written to %s\n", out_path);
  }
  return 0;
}

int RunDemo() {
  std::printf("(no arguments: running the Figure 1 CSV round-trip demo)\n");
  auto sample = workload::MakeFigureOneSample();
  if (!sample.ok()) return 1;

  // Serialize both instances, then reload through the CSV path as a user
  // would.
  std::string dirty_csv = relational::DatabaseToCsv(*sample->dirty);
  std::string truth_csv = relational::DatabaseToCsv(*sample->ground_truth);

  auto catalog = CatalogFromCsv(dirty_csv);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  relational::Database dirty(&*catalog);
  relational::Database truth(&*catalog);
  if (!relational::LoadDatabaseFromCsv(dirty_csv, &dirty).ok() ||
      !relational::LoadDatabaseFromCsv(truth_csv, &truth).ok()) {
    std::fprintf(stderr, "CSV reload failed\n");
    return 1;
  }
  std::printf("loaded %zu dirty facts, %zu truth facts from CSV\n",
              dirty.TotalFacts(), truth.TotalFacts());
  return RunSession(
      *catalog, &dirty, truth,
      "(x) :- Games(d1, x, y, 'Final', u1), Games(d2, x, z, 'Final', u2), "
      "Teams(x, 'EU'), d1 != d2.",
      nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return RunDemo();

  auto dirty_text = ReadFile(argv[1]);
  auto truth_text = ReadFile(argv[2]);
  if (!dirty_text.ok() || !truth_text.ok()) {
    std::fprintf(stderr, "cannot read input files\n");
    return 1;
  }
  auto catalog = CatalogFromCsv(*dirty_text);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  relational::Database dirty(&*catalog);
  relational::Database truth(&*catalog);
  auto load_dirty = relational::LoadDatabaseFromCsv(*dirty_text, &dirty);
  auto load_truth = relational::LoadDatabaseFromCsv(*truth_text, &truth);
  if (!load_dirty.ok() || !load_truth.ok()) {
    std::fprintf(stderr, "CSV load failed: %s %s\n",
                 load_dirty.ToString().c_str(),
                 load_truth.ToString().c_str());
    return 1;
  }
  return RunSession(*catalog, &dirty, truth, argv[3],
                    argc > 4 ? argv[4] : nullptr);
}
