// Ablation of the data-directed assignment extension in Algorithm 2: the
// raw split strategies (extension off — the paper's regime, where
// Provenance wins and Min-Cut vs Random has no clear winner) against the
// extended variant (extension on — Section 5's "direct the crowd with
// facts existing in D" carried to its conclusion, which narrows the gap
// between strategies by shrinking every completion task).

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

constexpr size_t kMissingAnswers = 5;

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  for (bool extension : {false, true}) {
    std::vector<exp::BarRow> rows;
    for (size_t qi : {3, 4, 5}) {
      auto q = workload::SoccerQuery(qi, *data->catalog);
      if (!q.ok()) return 1;
      auto planted = workload::PlantErrors(*q, *data->ground_truth, 0,
                                           kMissingAnswers, /*seed=*/7);
      if (!planted.ok()) return 1;
      for (cleaning::SplitStrategy strategy :
           {cleaning::SplitStrategy::kProvenance,
            cleaning::SplitStrategy::kMinCut,
            cleaning::SplitStrategy::kRandom}) {
        exp::RunSpec spec;
        spec.query = &*q;
        spec.ground_truth = data->ground_truth.get();
        spec.dirty = &planted->db;
        spec.cleaner.do_deletion = false;
        spec.cleaner.insertion.strategy = strategy;
        spec.cleaner.insertion.data_directed_extension = extension;
        auto r = exp::RunExperiment(spec);
        if (!r.ok()) {
          std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
          return 1;
        }
        exp::BarRow row;
        row.group = "Q" + std::to_string(qi);
        row.algorithm = cleaning::SplitStrategyName(strategy);
        row.lower = static_cast<double>(planted->missing.size());
        row.questions = r->filled_vars;
        row.avoided = r->insertion_upper - r->filled_vars;
        rows.push_back(row);
      }
    }
    exp::PrintFigure(
        std::string("Ablation: insertion with data-directed extension ") +
            (extension ? "ON" : "OFF (paper's raw split strategies)"),
        "# missing", "# filled vars", rows);
  }
  return 0;
}
