// Reproduces Figure 3c: the mixed experiments (both wrong and missing
// answers) across queries Q1/Q2/Q3, comparing the full QOCO configuration
// (Algorithm 1 deletion + Provenance-split insertion inside Algorithm 3)
// against QOCO- and Random deletion baselines.
//
// Bars: black = answers verified + missing answers (the floor any
// algorithm pays), red = witness verification questions + filled
// variables, white = avoided vs the combined naive upper bounds.

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

constexpr size_t kWrongAnswers = 5;
constexpr size_t kMissingAnswers = 5;

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::vector<exp::BarRow> rows;
  for (size_t qi : {1, 2, 3}) {
    auto q = workload::SoccerQuery(qi, *data->catalog);
    if (!q.ok()) return 1;
    auto planted = workload::PlantErrors(*q, *data->ground_truth,
                                         kWrongAnswers, kMissingAnswers,
                                         /*seed=*/7);
    if (!planted.ok()) return 1;

    for (cleaning::DeletionPolicy policy :
         {cleaning::DeletionPolicy::kQoco, cleaning::DeletionPolicy::kQocoMinus,
          cleaning::DeletionPolicy::kRandom}) {
      exp::RunSpec spec;
      spec.query = &*q;
      spec.ground_truth = data->ground_truth.get();
      spec.dirty = &planted->db;
      spec.cleaner.deletion_policy = policy;
      spec.cleaner.insertion.strategy = cleaning::SplitStrategy::kProvenance;
      auto r = exp::RunExperiment(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
        return 1;
      }
      exp::BarRow row;
      row.group = "Q" + std::to_string(qi);
      row.algorithm = cleaning::DeletionPolicyName(policy);
      row.lower = r->verify_answer +
                  static_cast<double>(planted->missing.size());
      row.questions = r->verify_fact + r->filled_vars;
      row.avoided =
          (r->deletion_upper + r->insertion_upper) - row.questions;
      rows.push_back(row);
      if (r->final_result_distance != 0) {
        std::fprintf(stderr, "warning: Q%zu/%s did not converge\n", qi,
                     row.algorithm.c_str());
      }
    }
  }
  exp::PrintFigure(
      "Figure 3c: Mixed - multiple queries (5 wrong + 5 missing answers, "
      "perfect oracle)",
      "# res+missing", "# questions", rows);
  return 0;
}
