// Reproduces Figure 3b: insertion experiments across queries Q3/Q4/Q5 of
// the Soccer workload, comparing the Provenance, Min-Cut and Random split
// strategies (plus Naive, whose cost is the bar total).
//
// Bars per (query, strategy): black = number of missing answers (each must
// at least be pointed out by the crowd), red = variables the crowd filled
// in COMPL(α, Q|t) tasks, white = filled variables avoided relative to the
// naive no-split upper bound (all variables of Q|t per answer). Expected
// shape: Provenance best; no consistent winner between Min-Cut and Random.

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

constexpr size_t kMissingAnswers = 5;

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::vector<exp::BarRow> rows;
  for (size_t qi : {3, 4, 5}) {
    auto q = workload::SoccerQuery(qi, *data->catalog);
    if (!q.ok()) return 1;
    auto planted = workload::PlantErrors(*q, *data->ground_truth, 0,
                                         kMissingAnswers, /*seed=*/7);
    if (!planted.ok()) return 1;

    for (cleaning::SplitStrategy strategy :
         {cleaning::SplitStrategy::kProvenance, cleaning::SplitStrategy::kMinCut,
          cleaning::SplitStrategy::kRandom}) {
      exp::RunSpec spec;
      spec.query = &*q;
      spec.ground_truth = data->ground_truth.get();
      spec.dirty = &planted->db;
      spec.cleaner.do_deletion = false;
      spec.cleaner.insertion.strategy = strategy;
      auto r = exp::RunExperiment(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
        return 1;
      }
      exp::BarRow row;
      row.group = "Q" + std::to_string(qi);
      row.algorithm = cleaning::SplitStrategyName(strategy);
      row.lower = static_cast<double>(planted->missing.size());
      row.questions = r->filled_vars;
      row.avoided = r->insertion_upper - r->filled_vars;
      rows.push_back(row);
      if (r->final_result_distance != 0) {
        std::fprintf(stderr, "warning: Q%zu/%s did not converge\n", qi,
                     row.algorithm.c_str());
      }
    }
  }
  exp::PrintFigure(
      "Figure 3b: Insertion - multiple queries (5 missing answers, perfect "
      "oracle); bar total = Naive no-split cost",
      "# missing", "# questions", rows);
  return 0;
}
