// Reproduces Figure 3e: insertion on Q3 with a varying number of planted
// missing answers (2 / 5 / 10), comparing split strategies. Provenance
// stays best across noise levels; Min-Cut and Random trade places.

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto q = workload::SoccerQuery(3, *data->catalog);
  if (!q.ok()) return 1;

  std::vector<exp::BarRow> rows;
  for (size_t missing : {2, 5, 10}) {
    auto planted = workload::PlantErrors(*q, *data->ground_truth, 0, missing,
                                         /*seed=*/7);
    if (!planted.ok()) return 1;

    for (cleaning::SplitStrategy strategy :
         {cleaning::SplitStrategy::kProvenance, cleaning::SplitStrategy::kMinCut,
          cleaning::SplitStrategy::kRandom}) {
      exp::RunSpec spec;
      spec.query = &*q;
      spec.ground_truth = data->ground_truth.get();
      spec.dirty = &planted->db;
      spec.cleaner.do_deletion = false;
      spec.cleaner.insertion.strategy = strategy;
      auto r = exp::RunExperiment(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
        return 1;
      }
      exp::BarRow row;
      row.group =
          "Q3(" + std::to_string(planted->missing.size()) + " missing)";
      row.algorithm = cleaning::SplitStrategyName(strategy);
      row.lower = static_cast<double>(planted->missing.size());
      row.questions = r->filled_vars;
      row.avoided = r->insertion_upper - r->filled_vars;
      rows.push_back(row);
    }
  }
  exp::PrintFigure(
      "Figure 3e: Insertion - varying # of missing answers (Q3, perfect "
      "oracle); bar total = Naive no-split cost",
      "# missing", "# questions", rows);
  return 0;
}
