// Reproduces the Section 7.1 DBGroup showcase (reported in prose in the
// paper): running QOCO over the four grant-report queries discovers 5
// wrong answers (1 keynote + 4 members) and 7 missing answers (1 keynote,
// 1 member, 5 conference trips), repairing the database with 6 deletions
// and 8 insertions — all verified correct against the ground truth.

#include <cstdio>

#include "src/cleaning/cleaner.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/query/evaluator.h"
#include "src/workload/dbgroup.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

}  // namespace

int main() {
  auto data = workload::MakeDbGroupData(workload::DbGroupParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("== Section 7.1: DBGroup showcase ==\n");
  std::printf("database: %zu tuples (dirty), %zu tuples (ground truth)\n",
              data->dirty->TotalFacts(), data->ground_truth->TotalFacts());

  crowd::SimulatedOracle oracle(data->ground_truth.get());
  relational::Database db = *data->dirty;

  size_t wrong_total = 0;
  size_t missing_total = 0;
  size_t deletions = 0;
  size_t insertions = 0;
  size_t correct_edits = 0;
  size_t total_edits = 0;
  for (size_t i = 0; i < data->report_queries.size(); ++i) {
    const query::CQuery& q = data->report_queries[i];
    crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
    cleaning::QocoCleaner cleaner(q, &db, &panel, cleaning::CleanerConfig{},
                                  common::Rng(8));
    auto stats = cleaner.Run();
    if (!stats.ok()) {
      std::fprintf(stderr, "clean: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    size_t del = 0;
    size_t ins = 0;
    for (const cleaning::Edit& e : stats->edits) {
      bool correct = e.kind == cleaning::Edit::Kind::kDelete
                         ? !data->ground_truth->Contains(e.fact)
                         : data->ground_truth->Contains(e.fact);
      correct_edits += correct ? 1 : 0;
      ++total_edits;
      (e.kind == cleaning::Edit::Kind::kDelete ? del : ins) += 1;
    }
    std::printf(
        "Q%zu: %zu wrong answers, %zu missing answers, %zu deletions, %zu "
        "insertions (%s)\n",
        i + 1, stats->wrong_answers_removed, stats->missing_answers_added,
        del, ins, q.ToString(*data->catalog).c_str());
    wrong_total += stats->wrong_answers_removed;
    missing_total += stats->missing_answers_added;
    deletions += del;
    insertions += ins;
  }
  std::printf(
      "\ntotal: %zu wrong answers, %zu missing answers; %zu wrong tuples "
      "removed, %zu missing tuples added; %zu/%zu edits verified correct\n",
      wrong_total, missing_total, deletions, insertions, correct_edits,
      total_edits);
  std::printf(
      "paper:  5 wrong answers,  7 missing answers;  6 wrong tuples "
      "removed,  8 missing tuples added\n");
  return 0;
}
