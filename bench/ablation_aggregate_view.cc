// Ablation of the aggregate extension (Section 9 future work): the same
// "European teams that lost at least two finals" view cleaned (a) through
// the paper's self-join CQ encoding (Q1) and (b) through the aggregate
// cleaner on GROUP BY team HAVING COUNT(DISTINCT date) >= 2. The aggregate
// form prunes the paper's "numerous ways to achieve the same aggregate"
// search space by unit decomposition, and also handles thresholds the CQ
// encoding cannot express without a k-way self-join.

#include <cstdio>

#include "src/cleaning/aggregate_cleaner.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/exp/experiment.h"
#include "src/query/aggregate.h"
#include "src/query/parser.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  // The self-join encoding (paper Q1) and the planted errors.
  auto q1 = workload::SoccerQuery(1, *data->catalog);
  if (!q1.ok()) return 1;
  auto planted =
      workload::PlantErrors(*q1, *data->ground_truth, 3, 2, /*seed=*/7);
  if (!planted.ok()) return 1;

  // The aggregate form of the same view.
  auto base = query::ParseQuery(
      "(x, d) :- Games(d, y1, x, 'Final', u1), Teams(x, 'EU').",
      *data->catalog);
  if (!base.ok()) return 1;
  auto agg = query::AggregateQuery::Make(
      std::move(base).value(), 1, query::AggregateQuery::Cmp::kAtLeast, 2);
  if (!agg.ok()) return 1;

  std::printf("== Ablation: aggregate view vs self-join encoding ==\n");
  std::printf("view: %s\n\n", agg->ToString(*data->catalog).c_str());
  std::printf("%-22s %13s %13s %11s %10s\n", "encoding", "verify answer",
              "verify tuple", "fill vars", "converged");

  // (a) self-join CQ via the standard cleaner.
  {
    exp::RunSpec spec;
    spec.query = &*q1;
    spec.ground_truth = data->ground_truth.get();
    spec.dirty = &planted->db;
    auto r = exp::RunExperiment(spec);
    if (!r.ok()) return 1;
    std::printf("%-22s %13.1f %13.1f %11.1f %10s\n", "self-join CQ",
                r->verify_answer, r->verify_fact,
                r->filled_vars + r->missing_answer_vars,
                r->final_result_distance == 0 ? "yes" : "NO");
  }

  // (b) aggregate cleaner, averaged over the same seeds.
  {
    double va = 0;
    double vf = 0;
    double fill = 0;
    bool converged = true;
    const uint64_t seeds[] = {11, 23, 37};
    for (uint64_t seed : seeds) {
      crowd::SimulatedOracle oracle(data->ground_truth.get());
      crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
      relational::Database db = planted->db;
      cleaning::AggregateCleaner cleaner(*agg, &db, &panel,
                                         cleaning::CleanerConfig{},
                                         common::Rng(seed));
      auto stats = cleaner.Run();
      if (!stats.ok()) {
        std::fprintf(stderr, "aggregate clean: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      va += static_cast<double>(stats->questions.verify_answer);
      vf += static_cast<double>(stats->questions.verify_fact);
      fill += static_cast<double>(stats->questions.filled_variables +
                                  stats->questions.missing_answer_vars);
      query::AggregateEvaluator cleaned(&db);
      query::AggregateEvaluator truth(data->ground_truth.get());
      if (cleaned.AnswerTuples(*agg) != truth.AnswerTuples(*agg)) {
        converged = false;
      }
    }
    std::printf("%-22s %13.1f %13.1f %11.1f %10s\n", "aggregate (unit-wise)",
                va / 3, vf / 3, fill / 3, converged ? "yes" : "NO");
  }

  // Threshold sweep: the aggregate form handles any k without query
  // rewriting; report its question cost at increasing thresholds.
  std::printf("\n%-12s %13s %13s %11s %8s\n", "threshold", "verify answer",
              "verify tuple", "fill vars", "answers");
  for (size_t k : {1, 2, 3}) {
    auto base_k = query::ParseQuery(
        "(x, d) :- Games(d, y1, x, 'Final', u1), Teams(x, 'EU').",
        *data->catalog);
    if (!base_k.ok()) return 1;
    auto agg_k = query::AggregateQuery::Make(
        std::move(base_k).value(), 1, query::AggregateQuery::Cmp::kAtLeast,
        k);
    if (!agg_k.ok()) return 1;
    crowd::SimulatedOracle oracle(data->ground_truth.get());
    crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
    relational::Database db = planted->db;
    cleaning::AggregateCleaner cleaner(*agg_k, &db, &panel,
                                       cleaning::CleanerConfig{},
                                       common::Rng(11));
    auto stats = cleaner.Run();
    if (!stats.ok()) return 1;
    query::AggregateEvaluator cleaned(&db);
    std::printf("%-12zu %13zu %13zu %11zu %8zu\n", k,
                stats->questions.verify_answer,
                stats->questions.verify_fact,
                stats->questions.filled_variables +
                    stats->questions.missing_answer_vars,
                cleaned.AnswerTuples(*agg_k).size());
  }
  return 0;
}
