// Timing microbenchmarks over the dbgroup workload (Section 7.1's real
// research-group database): witness-tracked evaluation of the four report
// queries and whole cleaning sessions against the planted dirty instance.
// Split out of perf_microbench so the storage-engine before/after
// comparison (tools/bench.sh, BENCH_intern.json) can rebuild this file
// unchanged against both engines — it only touches boundary APIs.

#include <benchmark/benchmark.h>

#include "src/cleaning/cleaner.h"
#include "src/common/rng.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/query/evaluator.h"
#include "src/workload/dbgroup.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): benchmark driver.

const workload::DbGroupData& DbGroup() {
  static workload::DbGroupData data =
      std::move(workload::MakeDbGroupData(workload::DbGroupParams{})).value();
  return data;
}

void BM_EvaluateDbGroupQuery(benchmark::State& state) {
  const workload::DbGroupData& data = DbGroup();
  const query::CQuery& q =
      data.report_queries[static_cast<size_t>(state.range(0))];
  query::Evaluator evaluator(data.dirty.get());
  size_t answers = 0;
  for (auto _ : state) {
    query::EvalResult result = evaluator.Evaluate(q);
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_EvaluateDbGroupQuery)->DenseRange(0, 3);

void BM_DbGroupCleaningEndToEnd(benchmark::State& state) {
  const workload::DbGroupData& data = DbGroup();
  const query::CQuery& q =
      data.report_queries[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    relational::Database db = *data.dirty;
    crowd::SimulatedOracle oracle(data.ground_truth.get());
    crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
    cleaning::CleanerConfig config;
    cleaning::QocoCleaner cleaner(q, &db, &panel, config, common::Rng(3));
    auto stats = cleaner.Run();
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_DbGroupCleaningEndToEnd)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
