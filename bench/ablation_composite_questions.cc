// Ablation of the composite-question extension (Section 9 future work):
// deletion experiments on Q2/Q3 with composite batch sizes 1/2/4. Batching
// trades per-question precision for volume: the number of posted questions
// drops, while the number of individual tuple verdicts stays the same.

#include <cstdio>

#include "src/cleaning/remove_wrong_answer.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "== Ablation: composite questions - deletion question volume ==\n");
  std::printf("%-8s %-12s %14s %12s %12s\n", "query", "batch size",
              "questions", "edits", "converged");
  for (size_t qi : {2, 3}) {
    auto q = workload::SoccerQuery(qi, *data->catalog);
    if (!q.ok()) return 1;
    auto planted =
        workload::PlantErrors(*q, *data->ground_truth, 5, 0, /*seed=*/7);
    if (!planted.ok()) return 1;

    for (size_t batch : {1, 2, 4}) {
      double questions = 0;
      double edits = 0;
      bool all_converged = true;
      for (uint64_t seed : {11, 23, 37}) {
        crowd::SimulatedOracle oracle(data->ground_truth.get());
        crowd::PanelConfig panel_config;
        panel_config.composite_batch_size = batch;
        crowd::CrowdPanel panel({&oracle}, panel_config);
        relational::Database db = planted->db;
        common::Rng rng(seed);
        for (const relational::Tuple& wrong : planted->wrong) {
          auto removal = cleaning::RemoveWrongAnswer(
              *q, db, wrong, &panel, cleaning::DeletionPolicy::kQoco, &rng);
          if (!removal.ok()) return 1;
          if (!cleaning::ApplyEdits(removal->edits, &db).ok()) return 1;
          edits += static_cast<double>(removal->edits.size());
        }
        questions += static_cast<double>(panel.counts().verify_fact);
        query::Evaluator eval(&db);
        for (const relational::Tuple& wrong : planted->wrong) {
          if (eval.Evaluate(*q).ContainsAnswer(wrong)) all_converged = false;
        }
      }
      std::printf("Q%-7zu %-12zu %14.1f %12.1f %12s\n", qi, batch,
                  questions / 3, edits / 3, all_converged ? "yes" : "NO");
    }
  }
  return 0;
}
