// Reproduces Figure 3a: deletion experiments across queries Q1/Q2/Q3 of
// the Soccer workload, comparing QOCO, QOCO- and Random.
//
// Bars per (query, algorithm): black = answers that must be verified
// (TRUE(Q, t)? questions, a cost every algorithm pays), red = witness-tuple
// verification questions (TRUE(R(ā))?), white = questions avoided relative
// to the naive upper bound (every distinct tuple across the wrong answers'
// witnesses). Expected shape: QOCO <= QOCO- << Random, gaps growing with
// query size.

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

constexpr size_t kWrongAnswers = 5;

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::vector<exp::BarRow> rows;
  for (size_t qi : {1, 2, 3}) {
    auto q = workload::SoccerQuery(qi, *data->catalog);
    if (!q.ok()) return 1;
    auto planted = workload::PlantErrors(*q, *data->ground_truth,
                                         kWrongAnswers, 0, /*seed=*/7);
    if (!planted.ok()) return 1;

    for (cleaning::DeletionPolicy policy :
         {cleaning::DeletionPolicy::kQoco, cleaning::DeletionPolicy::kQocoMinus,
          cleaning::DeletionPolicy::kRandom}) {
      exp::RunSpec spec;
      spec.query = &*q;
      spec.ground_truth = data->ground_truth.get();
      spec.dirty = &planted->db;
      spec.cleaner.deletion_policy = policy;
      spec.cleaner.do_insertion = false;
      auto r = exp::RunExperiment(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
        return 1;
      }
      exp::BarRow row;
      row.group = "Q" + std::to_string(qi);
      row.algorithm = cleaning::DeletionPolicyName(policy);
      row.lower = r->verify_answer;
      row.questions = r->verify_fact;
      row.avoided = r->deletion_upper - r->verify_fact;
      rows.push_back(row);
      if (r->final_result_distance != 0) {
        std::fprintf(stderr, "warning: Q%zu/%s did not converge\n", qi,
                     row.algorithm.c_str());
      }
    }
  }
  exp::PrintFigure(
      "Figure 3a: Deletion - multiple queries (5 wrong answers, perfect "
      "oracle)",
      "# results", "# questions", rows);
  return 0;
}
