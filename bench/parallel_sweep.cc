// Serial-vs-N-thread sweep for the parallel evaluation engine, emitting
// BENCH_parallel.json (consumed by EXPERIMENTS.md §Parallel evaluation).
//
// Two sweeps, because the engine has two distinct things to overlap:
//
//  * cpu_bound_incremental_edit_loop — the BM_IncrementalEditLoop workload
//    (soccer Q3, 100-edit script, delta-maintained view) with the
//    evaluator fanning its root scan across the pool. Speedup here tracks
//    physical cores; on a single-core host it stays ~1x by design.
//
//  * latency_bound_concurrent_sessions — N independent cleaning sessions
//    whose oracle charges a simulated crowd latency per question
//    (Section 7: human latency dominates next-question selection). The
//    sessions are distributed over the pool, so waiting-on-the-crowd
//    overlaps and wall-clock speedup approaches min(threads, sessions)
//    even on one core.
//
// Both sweeps re-verify the determinism contract while timing: every
// thread count must reproduce the serial transcript (answers per step,
// question counts, edit counts) or the binary exits nonzero.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/cleaning/cleaner.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/question_log.h"
#include "src/crowd/simulated_oracle.h"
#include "src/query/incremental_view.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): benchmark driver.

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr size_t kNumSessions = 8;
constexpr double kOracleLatencyMs = 2.0;
constexpr int kRepetitions = 3;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Wraps an oracle and charges a fixed latency per question, modelling the
/// crowd round-trip the paper identifies as the dominant cost.
class LatencyOracle : public crowd::Oracle {
 public:
  LatencyOracle(crowd::Oracle* inner, double latency_ms)
      : inner_(inner), latency_(latency_ms) {}

  bool IsFactTrue(const relational::Fact& fact) override {
    Charge();
    return inner_->IsFactTrue(fact);
  }
  bool IsAnswerTrue(const query::CQuery& q,
                    const relational::Tuple& t) override {
    Charge();
    return inner_->IsAnswerTrue(q, t);
  }
  bool IsAnswerTrue(const query::UnionQuery& q,
                    const relational::Tuple& t) override {
    Charge();
    return inner_->IsAnswerTrue(q, t);
  }
  std::optional<query::Assignment> Complete(
      const query::CQuery& q, const query::Assignment& partial) override {
    Charge();
    return inner_->Complete(q, partial);
  }
  std::optional<relational::Tuple> MissingAnswer(
      const query::CQuery& q,
      const std::vector<relational::Tuple>& current) override {
    Charge();
    return inner_->MissingAnswer(q, current);
  }
  std::optional<relational::Tuple> MissingAnswer(
      const query::UnionQuery& q,
      const std::vector<relational::Tuple>& current) override {
    Charge();
    return inner_->MissingAnswer(q, current);
  }

 private:
  void Charge() {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latency_));
  }

  crowd::Oracle* inner_;
  double latency_;
};

/// Same fact pool and draw sequence as perf_microbench's EditScript.
std::vector<relational::Fact> EditScript(const query::CQuery& q,
                                         const relational::Database& db,
                                         size_t count, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<relational::Fact> pool;
  for (const query::Atom& atom : q.atoms()) {
    const relational::Relation& rel = db.relation(atom.relation);
    for (const relational::ITuple& t : rel.rows()) {
      pool.push_back(relational::Fact{
          atom.relation, relational::MaterializeTuple(t, db.dict())});
    }
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::vector<relational::Fact> script;
  script.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    script.push_back(pool[rng.Index(pool.size())]);
  }
  return script;
}

struct ConfigTiming {
  size_t threads = 0;
  double wall_ms = 0;
  double speedup = 1.0;
};

/// BM_IncrementalEditLoop at a given thread count: 100 edits against
/// soccer Q3 with the view delta-maintained and the evaluator's root scan
/// parallelized. Returns best-of-kRepetitions wall time; appends the
/// per-step answer-count signature to *signature for cross-config
/// comparison.
double TimeEditLoop(const workload::SoccerData& data, const query::CQuery& q,
                    size_t threads, std::vector<size_t>* signature) {
  relational::Database db = *data.ground_truth;
  std::vector<relational::Fact> script = EditScript(q, db, 50, 7);
  std::optional<common::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  query::IncrementalView view(q, &db, pool ? &*pool : nullptr);
  double best = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (const relational::Fact& f : script) {
      (void)db.Erase(f);
      view.OnErase(f);
      if (rep == 0) signature->push_back(view.result().size());
      (void)db.Insert(f);
      view.OnInsert(f);
      if (rep == 0) signature->push_back(view.result().size());
    }
    double ms = MsSince(start);
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

/// kNumSessions independent cleaning sessions (soccer Q3, planted errors,
/// crowd latency per question) distributed over a pool of `threads`
/// workers. Each session is internally serial (num_threads = 1); the
/// parallelism under test is *between* sessions. Appends each session's
/// question-count string to *signature.
double TimeConcurrentSessions(const workload::SoccerData& data,
                              const query::CQuery& q, size_t threads,
                              std::vector<std::string>* signature) {
  // Prepare per-session inputs outside the timed region.
  struct Session {
    std::optional<relational::Database> db;
    std::unique_ptr<crowd::SimulatedOracle> truth;
    std::unique_ptr<LatencyOracle> oracle;
    std::string questions;
    bool ok = false;
  };
  std::vector<Session> sessions(kNumSessions);
  for (size_t i = 0; i < kNumSessions; ++i) {
    auto planted = workload::PlantErrors(q, *data.ground_truth, 2, 2,
                                         /*seed=*/100 + i);
    if (!planted.ok()) {
      std::fprintf(stderr, "PlantErrors failed: %s\n",
                   planted.status().ToString().c_str());
      std::exit(1);
    }
    sessions[i].db = std::move(planted->db);
    sessions[i].truth =
        std::make_unique<crowd::SimulatedOracle>(data.ground_truth.get());
    sessions[i].oracle =
        std::make_unique<LatencyOracle>(sessions[i].truth.get(),
                                        kOracleLatencyMs);
  }

  auto run_session = [&q](Session* s, uint64_t seed) {
    crowd::CrowdPanel panel({s->oracle.get()}, crowd::PanelConfig{1});
    cleaning::CleanerConfig config;
    config.num_threads = 1;  // Sessions are serial; the pool runs sessions.
    cleaning::QocoCleaner cleaner(q, &*s->db, &panel, config,
                                  common::Rng(seed));
    auto stats = cleaner.Run();
    s->ok = stats.ok();
    if (stats.ok()) s->questions = crowd::ToString(stats->questions);
  };

  common::ThreadPool pool(threads);
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kNumSessions; ++i) {
    Session* s = &sessions[i];
    common::Status submitted =
        pool.Submit([&run_session, s, i] { run_session(s, 3000 + i); });
    if (!submitted.ok()) {
      std::fprintf(stderr, "Submit failed: %s\n",
                   submitted.ToString().c_str());
      std::exit(1);
    }
  }
  pool.Wait();
  double ms = MsSince(start);
  for (Session& s : sessions) {
    if (!s.ok) {
      std::fprintf(stderr, "cleaning session failed (threads=%zu)\n", threads);
      std::exit(1);
    }
    signature->push_back(s.questions);
  }
  return ms;
}

template <typename Signature, typename TimeFn>
std::vector<ConfigTiming> Sweep(const char* name, TimeFn time_fn) {
  std::vector<ConfigTiming> timings;
  Signature baseline;
  for (size_t threads : kThreadCounts) {
    Signature signature;
    ConfigTiming t;
    t.threads = threads;
    t.wall_ms = time_fn(threads, &signature);
    if (threads == 1) {
      baseline = signature;
    } else if (signature != baseline) {
      std::fprintf(stderr, "%s: transcript diverges at threads=%zu\n", name,
                   threads);
      std::exit(1);
    }
    t.speedup = timings.empty() ? 1.0 : timings.front().wall_ms / t.wall_ms;
    timings.push_back(t);
    std::printf("  %-42s threads=%zu  %8.2f ms  speedup %.2fx\n", name,
                threads, t.wall_ms, t.speedup);
  }
  return timings;
}

void AppendSweepJson(std::string* out, const char* name, const char* note,
                     const std::vector<ConfigTiming>& timings, bool last) {
  *out += "    {\n      \"name\": \"";
  *out += name;
  *out += "\",\n      \"note\": \"";
  *out += note;
  *out += "\",\n      \"configs\": [\n";
  for (size_t i = 0; i < timings.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "        {\"threads\": %zu, \"wall_ms\": %.3f, "
                  "\"speedup\": %.3f}%s\n",
                  timings[i].threads, timings[i].wall_ms, timings[i].speedup,
                  i + 1 < timings.size() ? "," : "");
    *out += buf;
  }
  *out += last ? "      ]\n    }\n" : "      ]\n    },\n";
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  auto data = std::move(workload::MakeSoccerData(workload::SoccerParams{}))
                  .value();
  auto q = std::move(workload::SoccerQuery(3, *data.catalog)).value();

  std::printf("parallel sweep (hardware_concurrency=%u)\n",
              std::thread::hardware_concurrency());

  std::vector<ConfigTiming> cpu = Sweep<std::vector<size_t>>(
      "cpu_bound_incremental_edit_loop", [&](size_t threads, auto* sig) {
        return TimeEditLoop(data, q, threads, sig);
      });
  std::vector<ConfigTiming> latency = Sweep<std::vector<std::string>>(
      "latency_bound_concurrent_sessions", [&](size_t threads, auto* sig) {
        return TimeConcurrentSessions(data, q, threads, sig);
      });

  std::string json = "{\n  \"context\": {\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"hardware_concurrency\": %u,\n"
                  "    \"sessions\": %zu,\n"
                  "    \"oracle_latency_ms\": %.1f,\n"
                  "    \"repetitions\": %d\n  },\n",
                  std::thread::hardware_concurrency(), kNumSessions,
                  kOracleLatencyMs, kRepetitions);
    json += buf;
  }
  json += "  \"sweeps\": [\n";
  AppendSweepJson(&json, "cpu_bound_incremental_edit_loop",
                  "evaluator root-scan fan-out; speedup bounded by physical "
                  "cores",
                  cpu, /*last=*/false);
  AppendSweepJson(&json, "latency_bound_concurrent_sessions",
                  "independent cleaning sessions over the pool; per-question "
                  "crowd latency overlaps across workers",
                  latency, /*last=*/true);
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
