// Ablation of the alternative deletion heuristics the paper mentions in
// Section 4 as drop-in replacements for most-frequent-first: the
// responsibility heuristic (Meliou et al.) and least-trusted-first with a
// provenance-like trust signal, against QOCO, QOCO- and Random.

#include <cstdio>

#include "src/cleaning/trust.h"
#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

constexpr size_t kWrongAnswers = 5;

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  // A trust signal with realistic fidelity: correct facts ~0.8, false
  // facts ~0.2, +-0.25 deterministic jitter.
  cleaning::NoisyGroundTruthTrust trust(data->ground_truth.get(), 0.25, 3);

  std::vector<exp::BarRow> rows;
  for (size_t qi : {2, 3}) {
    auto q = workload::SoccerQuery(qi, *data->catalog);
    if (!q.ok()) return 1;
    auto planted = workload::PlantErrors(*q, *data->ground_truth,
                                         kWrongAnswers, 0, /*seed=*/7);
    if (!planted.ok()) return 1;

    for (cleaning::DeletionPolicy policy :
         {cleaning::DeletionPolicy::kQoco, cleaning::DeletionPolicy::kQocoMinus,
          cleaning::DeletionPolicy::kResponsibility,
          cleaning::DeletionPolicy::kLeastTrusted,
          cleaning::DeletionPolicy::kRandom}) {
      exp::RunSpec spec;
      spec.query = &*q;
      spec.ground_truth = data->ground_truth.get();
      spec.dirty = &planted->db;
      spec.cleaner.deletion_policy = policy;
      spec.cleaner.trust = &trust;
      spec.cleaner.do_insertion = false;
      auto r = exp::RunExperiment(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
        return 1;
      }
      exp::BarRow row;
      row.group = "Q" + std::to_string(qi);
      row.algorithm = cleaning::DeletionPolicyName(policy);
      row.lower = r->verify_answer;
      row.questions = r->verify_fact;
      row.avoided = r->deletion_upper - r->verify_fact;
      rows.push_back(row);
    }
  }
  exp::PrintFigure(
      "Ablation: deletion tuple-selection heuristics (5 wrong answers, "
      "perfect oracle; trust = noisy provenance signal)",
      "# results", "# questions", rows);
  return 0;
}
