// Reproduces Figure 3d: deletion on Q3 with a varying number of planted
// wrong answers (2 / 5 / 10). The gap between QOCO and Random widens as
// the noise level grows.

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto q = workload::SoccerQuery(3, *data->catalog);
  if (!q.ok()) return 1;

  std::vector<exp::BarRow> rows;
  for (size_t wrong : {2, 5, 10}) {
    auto planted =
        workload::PlantErrors(*q, *data->ground_truth, wrong, 0, /*seed=*/7);
    if (!planted.ok()) return 1;

    for (cleaning::DeletionPolicy policy :
         {cleaning::DeletionPolicy::kQoco, cleaning::DeletionPolicy::kQocoMinus,
          cleaning::DeletionPolicy::kRandom}) {
      exp::RunSpec spec;
      spec.query = &*q;
      spec.ground_truth = data->ground_truth.get();
      spec.dirty = &planted->db;
      spec.cleaner.deletion_policy = policy;
      spec.cleaner.do_insertion = false;
      auto r = exp::RunExperiment(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
        return 1;
      }
      exp::BarRow row;
      row.group = "Q3(" + std::to_string(planted->wrong.size()) + " wrong)";
      row.algorithm = cleaning::DeletionPolicyName(policy);
      row.lower = r->verify_answer;
      row.questions = r->verify_fact;
      row.avoided = r->deletion_upper - r->verify_fact;
      rows.push_back(row);
    }
  }
  exp::PrintFigure(
      "Figure 3d: Deletion - varying # of wrong answers (Q3, perfect "
      "oracle)",
      "# results", "# questions", rows);
  return 0;
}
