// Reproduces Figure 4: cleaning with a real (imperfect) expert crowd on Q2
// and Q3 — five experts with a 10% per-question error rate, every closed
// question decided by majority among a sample of 3 (a decision is reached
// as soon as two agree), and answers to open questions re-verified with
// closed questions (Section 6.2).
//
// The reported metric is individual member answers, broken down by
// question type as in the paper. A second table sweeps the expert error
// rate to show the aggregation cost growing with member unreliability.

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

constexpr size_t kWrongAnswers = 5;
constexpr size_t kMissingAnswers = 5;

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::vector<exp::TypedRow> rows;
  for (size_t qi : {2, 3}) {
    auto q = workload::SoccerQuery(qi, *data->catalog);
    if (!q.ok()) return 1;
    auto planted = workload::PlantErrors(*q, *data->ground_truth,
                                         kWrongAnswers, kMissingAnswers,
                                         /*seed=*/7);
    if (!planted.ok()) return 1;

    for (cleaning::DeletionPolicy policy :
         {cleaning::DeletionPolicy::kQoco, cleaning::DeletionPolicy::kQocoMinus,
          cleaning::DeletionPolicy::kRandom}) {
      exp::RunSpec spec;
      spec.query = &*q;
      spec.ground_truth = data->ground_truth.get();
      spec.dirty = &planted->db;
      spec.cleaner.deletion_policy = policy;
      spec.cleaner.insertion.strategy = cleaning::SplitStrategy::kProvenance;
      spec.cleaner.enumeration_nulls_to_stop = 2;
      spec.num_experts = 5;
      spec.sample_size = 3;
      spec.expert_error_rate = 0.1;
      spec.seeds = {11, 23, 37};
      auto r = exp::RunExperiment(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
        return 1;
      }
      exp::TypedRow row;
      row.group = "Q" + std::to_string(qi);
      row.algorithm = cleaning::DeletionPolicyName(policy);
      // Figure 4 counts individual member answers; apportion them by the
      // share each question type contributed.
      double aggregated = r->verify_answer + r->verify_fact +
                          r->filled_vars + r->missing_answer_vars;
      double scale = aggregated > 0 ? r->member_answers / aggregated : 0;
      row.verify_answers = r->verify_answer * scale;
      row.verify_tuples = r->verify_fact * scale;
      row.fill_missing = (r->filled_vars + r->missing_answer_vars) * scale;
      rows.push_back(row);
    }
  }
  exp::PrintTypedFigure(
      "Figure 4: Real (imperfect) expert crowd - member answers by type "
      "(5 wrong + 5 missing, 5 experts, error rate 0.1, vote of 3)",
      rows);

  // Ablation: majority-vote cost vs expert error rate (Q3, QOCO).
  auto q3 = workload::SoccerQuery(3, *data->catalog);
  if (!q3.ok()) return 1;
  auto planted = workload::PlantErrors(*q3, *data->ground_truth,
                                       kWrongAnswers, kMissingAnswers,
                                       /*seed=*/7);
  if (!planted.ok()) return 1;
  std::printf(
      "\n== Ablation: expert error rate vs crowd cost and residual error "
      "(Q3, QOCO) ==\n");
  std::printf("%-12s %16s %16s %20s\n", "error rate", "member answers",
              "result residual", "db distance");
  for (double error_rate : {0.0, 0.05, 0.1, 0.2}) {
    exp::RunSpec spec;
    spec.query = &*q3;
    spec.ground_truth = data->ground_truth.get();
    spec.dirty = &planted->db;
    spec.cleaner.insertion.strategy = cleaning::SplitStrategy::kProvenance;
    spec.cleaner.enumeration_nulls_to_stop = 2;
    spec.num_experts = 5;
    spec.sample_size = 3;
    spec.expert_error_rate = error_rate;
    spec.seeds = {11, 23, 37};
    auto r = exp::RunExperiment(spec);
    if (!r.ok()) return 1;
    std::printf("%-12.2f %16.1f %16.1f %8.1f -> %5.1f\n", error_rate,
                r->member_answers, r->final_result_distance,
                r->initial_db_distance, r->final_db_distance);
  }
  return 0;
}
