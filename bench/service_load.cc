// Closed-loop load generator for the session service (src/service/),
// emitting BENCH_service.json (consumed by EXPERIMENTS.md §Session
// service).
//
// kNumSessions cleaning sessions over the Figure-1 sample are submitted to
// a SessionManager whose oracle charges a simulated crowd latency per
// question, swept across manager pool widths. Sessions overlap heavily
// (shared queries, a few distinct seeds), so the QuestionBroker's
// cross-session dedup is the dominant effect: most asks join an in-flight
// question or hit the answer cache instead of paying the crowd round-trip.
//
// Reported per thread count: wall clock, sessions/sec, p50/p99 ask→answer
// latency (broker samples; cache hits count as 0), and the dedup savings
// ratio asked / oracle_issues. The run fails (exit 1) if dedup savings
// drop below 2x or if any session's transcript (edit journal, final facts,
// question counts) diverges from a solo serial run of the same spec — the
// measured numbers are only meaningful while the determinism contract
// holds.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/crowd/async_oracle.h"
#include "src/crowd/question_log.h"
#include "src/crowd/simulated_oracle.h"
#include "src/qoco/session.h"
#include "src/service/clock.h"
#include "src/service/question_broker.h"
#include "src/service/session_manager.h"
#include "src/workload/figure_one.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): benchmark driver.

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr size_t kNumSessions = 16;
constexpr size_t kDispatchWidth = 8;  // questions in flight at the "crowd"

constexpr char kQ1[] =
    "(x) :- Games(d1, x, y, 'Final', u1), Games(d2, x, z, 'Final', u2), "
    "Teams(x, 'EU'), d1 != d2.";
constexpr char kQ2[] =
    "(x) :- Players(x, y, z, w), Goals(x, d), "
    "Games(d, y, v, 'Final', u), Teams(y, 'EU').";

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Charges a fixed latency per question, modelling the crowd round-trip
/// the paper identifies as the dominant cost (Section 7). SimulatedOracle
/// only reads the ground truth, so concurrent charged calls are safe.
class LatencyOracle : public crowd::Oracle {
 public:
  LatencyOracle(crowd::Oracle* inner, double latency_ms)
      : inner_(inner), latency_(latency_ms) {}

  bool IsFactTrue(const relational::Fact& fact) override {
    Charge();
    return inner_->IsFactTrue(fact);
  }
  bool IsAnswerTrue(const query::CQuery& q,
                    const relational::Tuple& t) override {
    Charge();
    return inner_->IsAnswerTrue(q, t);
  }
  bool IsAnswerTrue(const query::UnionQuery& q,
                    const relational::Tuple& t) override {
    Charge();
    return inner_->IsAnswerTrue(q, t);
  }
  std::optional<query::Assignment> Complete(
      const query::CQuery& q, const query::Assignment& partial) override {
    Charge();
    return inner_->Complete(q, partial);
  }
  std::optional<relational::Tuple> MissingAnswer(
      const query::CQuery& q,
      const std::vector<relational::Tuple>& current) override {
    Charge();
    return inner_->MissingAnswer(q, current);
  }
  std::optional<relational::Tuple> MissingAnswer(
      const query::UnionQuery& q,
      const std::vector<relational::Tuple>& current) override {
    Charge();
    return inner_->MissingAnswer(q, current);
  }

 private:
  void Charge() {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latency_));
  }

  crowd::Oracle* inner_;
  double latency_;
};

/// The load mix: every session cleans Q1, odd sessions also clean Q2, and
/// four distinct seeds split the sessions into groups that replay
/// identical question sequences — the overlap the broker collapses.
std::vector<service::SessionSpec> MakeSpecs() {
  std::vector<service::SessionSpec> specs;
  for (size_t i = 0; i < kNumSessions; ++i) {
    service::SessionSpec spec;
    spec.steps.push_back({service::SessionSpec::Step::Kind::kCleanView, kQ1});
    if (i % 2 == 1) {
      spec.steps.push_back(
          {service::SessionSpec::Step::Kind::kCleanView, kQ2});
    }
    spec.seed = 100 + (i % 4);
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// What a session leaves behind, reduced to the comparable parts.
struct Transcript {
  std::string journal;
  std::string facts;
  std::string questions;

  bool operator==(const Transcript& o) const {
    return journal == o.journal && facts == o.facts && questions == o.questions;
  }
};

/// Solo serial reference: a plain qoco::Session over a private copy of the
/// dirty database, no service layer, no latency. The broker shares answers
/// from a pure oracle, so every concurrent run must reproduce this.
Transcript RunDirect(const workload::FigureOneSample& s,
                     const service::SessionSpec& spec) {
  relational::Database db = *s.dirty;
  crowd::SimulatedOracle sim(s.ground_truth.get());
  Session::Options options;
  options.cleaner.num_threads = 1;
  options.panel.sample_size = 1;
  options.seed = spec.seed;
  Session session(&db, {&sim}, options);
  for (const service::SessionSpec::Step& step : spec.steps) {
    auto stats = session.CleanView(step.query_text);
    if (!stats.ok()) {
      std::fprintf(stderr, "reference session failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
  }
  return {session.journal().contents(), session.FinalFactsCsv(),
          crowd::ToString(session.questions())};
}

struct ConfigResult {
  size_t threads = 0;
  double wall_ms = 0;
  double sessions_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t asked = 0;
  size_t oracle_issues = 0;
  double dedup_savings = 0;
};

double PercentileMs(std::vector<service::Tick> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(pct / 100.0 * samples.size());
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx] / 1000.0;  // RealtimeClock ticks are microseconds
}

/// One full service run at `threads` manager workers: submit every spec,
/// wait, verify each transcript against its solo reference, and collect
/// the broker's accounting.
ConfigResult RunConfig(const workload::FigureOneSample& s,
                       const std::vector<service::SessionSpec>& specs,
                       const std::vector<Transcript>& reference,
                       size_t threads, double latency_ms) {
  crowd::SimulatedOracle sim(s.ground_truth.get());
  LatencyOracle slow(&sim, latency_ms);
  common::ThreadPool dispatch(kDispatchWidth);
  crowd::BlockingOracleAdapter async(&slow, &dispatch);
  service::RealtimeClock clock;
  service::QuestionBroker broker(&async, &clock);
  common::ThreadPool pool(threads);
  service::SessionManager manager(s.dirty.get(), &broker, &pool);

  auto start = std::chrono::steady_clock::now();
  std::vector<service::SessionId> ids;
  for (const service::SessionSpec& spec : specs) {
    auto id = manager.Submit(spec);
    if (!id.ok()) {
      std::fprintf(stderr, "Submit failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
    ids.push_back(id.value());
  }
  std::vector<service::SessionResult> results;
  for (service::SessionId id : ids) {
    auto r = manager.Wait(id);
    if (!r.ok() || !r.value().status.ok()) {
      std::fprintf(stderr, "session %llu failed (threads=%zu)\n",
                   static_cast<unsigned long long>(id), threads);
      std::exit(1);
    }
    results.push_back(std::move(r).value());
  }
  const double wall_ms = MsSince(start);

  for (size_t i = 0; i < results.size(); ++i) {
    Transcript got{results[i].journal, results[i].final_facts_csv,
                   crowd::ToString(results[i].questions)};
    if (!(got == reference[i])) {
      std::fprintf(stderr,
                   "determinism violation: session %zu diverges from its "
                   "solo run at threads=%zu\n",
                   i, threads);
      std::exit(1);
    }
  }

  const service::BrokerStats stats = broker.stats();
  ConfigResult r;
  r.threads = threads;
  r.wall_ms = wall_ms;
  r.sessions_per_sec = kNumSessions / (wall_ms / 1000.0);
  r.p50_ms = PercentileMs(broker.LatencySamples(), 50.0);
  r.p99_ms = PercentileMs(broker.LatencySamples(), 99.0);
  r.asked = stats.asked;
  r.oracle_issues = stats.oracle_issues;
  r.dedup_savings =
      stats.oracle_issues == 0
          ? 0
          : static_cast<double>(stats.asked) / stats.oracle_issues;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  // Smoke mode (the bench-smoke ctest label) shrinks the charged latency so
  // the pass stays cheap; the dedup and determinism assertions still run.
  const double latency_ms = smoke ? 0.2 : 2.0;

  auto sample = std::move(workload::MakeFigureOneSample()).value();
  const std::vector<service::SessionSpec> specs = MakeSpecs();

  std::printf("service load (sessions=%zu, oracle_latency=%.1fms, "
              "hardware_concurrency=%u)\n",
              kNumSessions, latency_ms, std::thread::hardware_concurrency());

  std::vector<Transcript> reference;
  for (const service::SessionSpec& spec : specs) {
    reference.push_back(RunDirect(sample, spec));
  }

  std::vector<ConfigResult> configs;
  for (size_t threads : kThreadCounts) {
    ConfigResult r = RunConfig(sample, specs, reference, threads, latency_ms);
    std::printf("  threads=%zu  %8.2f ms  %7.1f sessions/s  p50 %.2f ms  "
                "p99 %.2f ms  dedup %.2fx (%zu asks -> %zu issues)\n",
                r.threads, r.wall_ms, r.sessions_per_sec, r.p50_ms, r.p99_ms,
                r.dedup_savings, r.asked, r.oracle_issues);
    if (r.dedup_savings < 2.0) {
      std::fprintf(stderr,
                   "dedup savings %.2fx below the 2x floor at threads=%zu\n",
                   r.dedup_savings, threads);
      return 1;
    }
    configs.push_back(r);
  }

  std::string json = "{\n  \"context\": {\n";
  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    \"note\": \"closed-loop session-service load: %zu overlapping "
        "cleaning sessions over the Figure-1 sample, %.1fms simulated crowd "
        "latency per issued question; transcripts verified byte-identical "
        "to solo serial runs at every thread count\",\n"
        "    \"hardware_concurrency\": %u,\n"
        "    \"sessions\": %zu,\n"
        "    \"oracle_latency_ms\": %.1f,\n"
        "    \"dispatch_width\": %zu\n  },\n",
        kNumSessions, latency_ms, std::thread::hardware_concurrency(),
        kNumSessions, latency_ms, kDispatchWidth);
    json += buf;
  }
  json += "  \"configs\": [\n";
  for (size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& r = configs[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %zu, \"wall_ms\": %.3f, "
                  "\"sessions_per_sec\": %.2f, \"p50_question_ms\": %.3f, "
                  "\"p99_question_ms\": %.3f, \"asked\": %zu, "
                  "\"oracle_issues\": %zu, \"dedup_savings\": %.3f}%s\n",
                  r.threads, r.wall_ms, r.sessions_per_sec, r.p50_ms,
                  r.p99_ms, r.asked, r.oracle_issues, r.dedup_savings,
                  i + 1 < configs.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
