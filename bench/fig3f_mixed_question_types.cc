// Reproduces Figure 3f: the Mixed algorithm on Q3 with (2,2) / (5,5) /
// (10,10) planted (missing, wrong) answers, broken down by the type of
// crowd interaction: verify answers (TRUE(Q, t)?), verify tuples
// (TRUE(R(ā))?), and fill missing (variables supplied through COMPL
// tasks). All three grow with the error level.

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto q = workload::SoccerQuery(3, *data->catalog);
  if (!q.ok()) return 1;

  std::vector<exp::TypedRow> rows;
  for (size_t errors : {2, 5, 10}) {
    auto planted = workload::PlantErrors(*q, *data->ground_truth, errors,
                                         errors, /*seed=*/7);
    if (!planted.ok()) return 1;

    exp::RunSpec spec;
    spec.query = &*q;
    spec.ground_truth = data->ground_truth.get();
    spec.dirty = &planted->db;
    spec.cleaner.deletion_policy = cleaning::DeletionPolicy::kQoco;
    spec.cleaner.insertion.strategy = cleaning::SplitStrategy::kProvenance;
    auto r = exp::RunExperiment(spec);
    if (!r.ok()) {
      std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
      return 1;
    }
    exp::TypedRow row;
    row.group = "QOCO(" + std::to_string(planted->missing.size()) +
                " missing, " + std::to_string(planted->wrong.size()) +
                " wrong)";
    row.algorithm = "Mixed";
    row.verify_answers = r->verify_answer;
    row.verify_tuples = r->verify_fact;
    row.fill_missing = r->filled_vars + r->missing_answer_vars;
    rows.push_back(row);
  }
  exp::PrintTypedFigure(
      "Figure 3f: Mixed - types of questions (Q3, perfect oracle)", rows);
  return 0;
}
