// Timing microbenchmarks (google-benchmark) backing the paper's claim that
// next-question selection takes at most one or two seconds and is
// negligible against human latency (Section 7). Covers query evaluation
// with witness tracking, satisfiability probes, hitting-set machinery
// (greedy vs exact), the min-cut and WhyNot? split substrates, and the
// end-to-end per-answer cleaning routines.

#include <benchmark/benchmark.h>

#include "src/cleaning/add_missing_answer.h"
#include "src/cleaning/remove_wrong_answer.h"
#include "src/cleaning/split_strategy.h"
#include "src/crowd/crowd_panel.h"
#include "src/crowd/simulated_oracle.h"
#include "src/graph/graph.h"
#include "src/hittingset/hitting_set.h"
#include "src/provenance/whynot.h"
#include "src/query/evaluator.h"
#include "src/query/incremental_view.h"
#include "src/query/parser.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): benchmark driver.

const workload::SoccerData& Soccer() {
  static workload::SoccerData data =
      std::move(workload::MakeSoccerData(workload::SoccerParams{})).value();
  return data;
}

void BM_EvaluateSoccerQuery(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(static_cast<size_t>(state.range(0)),
                                 *data.catalog);
  query::Evaluator evaluator(data.ground_truth.get());
  size_t answers = 0;
  for (auto _ : state) {
    query::EvalResult result = evaluator.Evaluate(*q);
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_EvaluateSoccerQuery)->DenseRange(1, 5);

void BM_SatisfiabilityProbe(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(3, *data.catalog);
  query::Evaluator evaluator(data.ground_truth.get());
  query::Assignment empty(q->num_vars(), &data.ground_truth->dict());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.IsSatisfiable(*q, empty));
  }
}
BENCHMARK(BM_SatisfiabilityProbe);

// Interning-layer primitives: the per-probe costs the dictionary-encoded
// storage engine amortizes away. Value-space hashing/compares walk a
// variant (and string bytes); their id-space twins are integer ops.
void BM_ValueHash(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  std::vector<relational::Value> values =
      data.ground_truth->relation(0).ColumnDomain(0);
  std::vector<relational::ValueId> ids;
  for (const relational::Value& v : values) {
    ids.push_back(*data.ground_truth->dict().Find(v));
  }
  if (state.range(0) == 0) {
    for (auto _ : state) {
      size_t h = 0;
      for (const relational::Value& v : values) h ^= v.Hash();
      benchmark::DoNotOptimize(h);
    }
  } else {
    for (auto _ : state) {
      size_t h = 0;
      for (relational::ValueId id : ids) h ^= relational::HashValueId(id);
      benchmark::DoNotOptimize(h);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_ValueHash)->Arg(0)->Arg(1);  // 0 = Value, 1 = ValueId

void BM_TupleCompare(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  const relational::Relation& rel = data.ground_truth->relation(0);
  const std::vector<relational::ITuple>& rows = rel.rows();
  std::vector<relational::Tuple> tuples;
  for (const relational::ITuple& t : rows) {
    tuples.push_back(relational::MaterializeTuple(t, data.ground_truth->dict()));
  }
  if (state.range(0) == 0) {
    for (auto _ : state) {
      size_t equal = 0;
      for (size_t i = 1; i < tuples.size(); ++i) {
        equal += tuples[i - 1] == tuples[i];
      }
      benchmark::DoNotOptimize(equal);
    }
  } else {
    for (auto _ : state) {
      size_t equal = 0;
      for (size_t i = 1; i < rows.size(); ++i) {
        equal += rows[i - 1] == rows[i];
      }
      benchmark::DoNotOptimize(equal);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows.size() - 1));
}
BENCHMARK(BM_TupleCompare)->Arg(0)->Arg(1);  // 0 = Tuple, 1 = ITuple

void BM_InternProbe(benchmark::State& state) {
  // Heterogeneous FindString: the hot boundary probe (parser literals,
  // oracle answers) — no std::string, no Value construction on a hit.
  const workload::SoccerData& data = Soccer();
  std::vector<relational::Value> values =
      data.ground_truth->relation(0).ColumnDomain(0);
  std::vector<std::string> strings;
  for (const relational::Value& v : values) {
    if (v.is_string()) strings.push_back(v.AsString());
  }
  const relational::ValueDictionary& dict = data.ground_truth->dict();
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& s : strings) {
      hits += dict.FindString(std::string_view(s)).has_value();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(strings.size()));
}
BENCHMARK(BM_InternProbe);

void BM_ParseQuery(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  std::string text = workload::SoccerQueryTexts()[1];
  for (auto _ : state) {
    auto q = query::ParseQuery(text, *data.catalog);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

hittingset::Instance RandomInstance(size_t elements, size_t sets,
                                    size_t set_size, uint64_t seed) {
  common::Rng rng(seed);
  hittingset::Instance instance;
  instance.num_elements = elements;
  for (size_t s = 0; s < sets; ++s) {
    std::vector<int> set;
    for (size_t i = 0; i < set_size; ++i) {
      set.push_back(static_cast<int>(rng.Index(elements)));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    instance.sets.push_back(std::move(set));
  }
  return instance;
}

void BM_GreedyHittingSet(benchmark::State& state) {
  hittingset::Instance instance =
      RandomInstance(static_cast<size_t>(state.range(0)),
                     static_cast<size_t>(state.range(0)) * 3, 4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hittingset::GreedyHittingSet(instance));
  }
}
BENCHMARK(BM_GreedyHittingSet)->Arg(16)->Arg(64)->Arg(256);

void BM_ExactHittingSet(benchmark::State& state) {
  hittingset::Instance instance = RandomInstance(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(0)) * 2, 3, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hittingset::ExactMinimumHittingSet(instance));
  }
}
BENCHMARK(BM_ExactHittingSet)->Arg(8)->Arg(12)->Arg(16);

void BM_StoerWagnerMinCut(benchmark::State& state) {
  common::Rng rng(3);
  size_t n = static_cast<size_t>(state.range(0));
  graph::WeightedGraph g(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Chance(0.3)) g.AddEdge(i, j, rng.Uniform(1, 5));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GlobalMinCut(g));
  }
}
BENCHMARK(BM_StoerWagnerMinCut)->Arg(8)->Arg(32)->Arg(64);

void BM_WhyNotAnalyze(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(5, *data.catalog);
  auto planted =
      workload::PlantErrors(*q, *data.ground_truth, 0, 3, /*seed=*/5);
  auto q_t = q->InstantiateAnswer(planted->missing.front());
  provenance::WhyNotAnalyzer analyzer(&planted->db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Analyze(*q_t));
  }
}
BENCHMARK(BM_WhyNotAnalyze);

// Per-edit view refresh: Algorithm 4 applies one edit per oracle round and
// then re-reads Q(D). These two benchmarks run the same edit script —
// `range(0)` edits alternating erase / re-insert of query-relevant facts,
// leaving the database unchanged at the end of each iteration — and differ
// only in how the view is refreshed: from scratch with Evaluator::Evaluate
// (the pre-incremental behaviour) vs. delta-maintained by IncrementalView.
std::vector<relational::Fact> EditScript(const query::CQuery& q,
                                         const relational::Database& db,
                                         size_t count, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<relational::Fact> pool;
  for (const query::Atom& atom : q.atoms()) {
    const relational::Relation& rel = db.relation(atom.relation);
    for (const relational::ITuple& t : rel.rows()) {
      pool.push_back(relational::Fact{
          atom.relation, relational::MaterializeTuple(t, db.dict())});
    }
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::vector<relational::Fact> script;
  script.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    script.push_back(pool[rng.Index(pool.size())]);
  }
  return script;
}

void BM_FullReevalEditLoop(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(3, *data.catalog);
  size_t num_edits = static_cast<size_t>(state.range(0));
  relational::Database db = *data.ground_truth;
  std::vector<relational::Fact> script = EditScript(*q, db, num_edits / 2, 7);
  query::Evaluator evaluator(&db);
  size_t answers = 0;
  for (auto _ : state) {
    for (const relational::Fact& f : script) {
      (void)db.Erase(f);
      answers = evaluator.Evaluate(*q).size();
      benchmark::DoNotOptimize(answers);
      (void)db.Insert(f);
      answers = evaluator.Evaluate(*q).size();
      benchmark::DoNotOptimize(answers);
    }
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["edits"] = static_cast<double>(script.size() * 2);
}
BENCHMARK(BM_FullReevalEditLoop)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_IncrementalEditLoop(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(3, *data.catalog);
  size_t num_edits = static_cast<size_t>(state.range(0));
  relational::Database db = *data.ground_truth;
  std::vector<relational::Fact> script = EditScript(*q, db, num_edits / 2, 7);
  query::IncrementalView view(*q, &db);
  size_t answers = 0;
  for (auto _ : state) {
    for (const relational::Fact& f : script) {
      (void)db.Erase(f);
      view.OnErase(f);
      answers = view.result().size();
      benchmark::DoNotOptimize(answers);
      (void)db.Insert(f);
      view.OnInsert(f);
      answers = view.result().size();
      benchmark::DoNotOptimize(answers);
    }
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["edits"] = static_cast<double>(script.size() * 2);
}
BENCHMARK(BM_IncrementalEditLoop)->Arg(100)->Unit(benchmark::kMillisecond);

// End-to-end per-answer cleaning: the paper reports the time to select the
// next question never exceeded one or two seconds; these run a *whole*
// answer repair (all question selections for one answer) per iteration.
void BM_RemoveWrongAnswerEndToEnd(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(3, *data.catalog);
  auto planted =
      workload::PlantErrors(*q, *data.ground_truth, 3, 0, /*seed=*/5);
  crowd::SimulatedOracle oracle(data.ground_truth.get());
  common::Rng rng(1);
  for (auto _ : state) {
    crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
    auto result =
        cleaning::RemoveWrongAnswer(*q, planted->db, planted->wrong.front(),
                                    &panel, cleaning::DeletionPolicy::kQoco,
                                    &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RemoveWrongAnswerEndToEnd);

void BM_AddMissingAnswerEndToEnd(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(3, *data.catalog);
  auto planted =
      workload::PlantErrors(*q, *data.ground_truth, 0, 3, /*seed=*/5);
  crowd::SimulatedOracle oracle(data.ground_truth.get());
  common::Rng rng(1);
  for (auto _ : state) {
    relational::Database db = planted->db;
    crowd::CrowdPanel panel({&oracle}, crowd::PanelConfig{1});
    auto result = cleaning::AddMissingAnswer(
        *q, &db, planted->missing.front(), &panel,
        cleaning::InsertionConfig{}, &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AddMissingAnswerEndToEnd);

}  // namespace

BENCHMARK_MAIN();
