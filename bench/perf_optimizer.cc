// Benchmarks for the cost-based planner (google-benchmark): the
// adversarial-atom-order workload where the legacy most-bound-first greedy
// roots a huge scan the planner avoids, worst-vs-best written order under
// the strict parse-order engine, the semi-join root reduction on a
// low-selectivity join, and end-to-end evaluation of the soccer and
// dbgroup workload queries under each engine. Each benchmark labels its
// run with the planned atom order and reports tuple counts as counters so
// tools/bench.sh can embed both in BENCH_optimizer.json.

#include <benchmark/benchmark.h>

#include <string>

#include "src/query/evaluator.h"
#include "src/query/parser.h"
#include "src/query/planner.h"
#include "src/relational/database.h"
#include "src/workload/dbgroup.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): benchmark driver.

using query::EvalMode;

/// Adversarial join: Facts has kFactsRows rows, every one matching the
/// constants of the Facts atom, while Dim holds kDimRows keys. The written
/// order (and the legacy bound-positions-first rule, which roots the
/// 2-constant Facts atom) expands Facts first — kFactsRows root iterations
/// — where cost-based planning roots Dim and probes Facts per key.
constexpr size_t kFactsRows = 20'000;
constexpr size_t kDimRows = 10;

struct AdversarialData {
  relational::Catalog catalog;
  std::unique_ptr<relational::Database> db;
  relational::RelationId facts = relational::kInvalidRelation;
  relational::RelationId dim = relational::kInvalidRelation;
};

const AdversarialData& Adversarial() {
  // Built in place (the Database points into the sibling catalog, so the
  // struct must never move).
  static AdversarialData data;
  static const bool initialized = [] {
    AdversarialData* d = &data;
    d->facts = *d->catalog.AddRelation("Facts", {"key", "t1", "t2"});
    d->dim = *d->catalog.AddRelation("Dim", {"key"});
    d->db = std::make_unique<relational::Database>(&d->catalog);
    using relational::Value;
    for (size_t i = 0; i < kFactsRows; ++i) {
      d->db->Insert({d->facts,
                     {Value("k" + std::to_string(i)), Value("tag1"),
                      Value("tag2")}})
          .value();
    }
    for (size_t i = 0; i < kDimRows; ++i) {
      // Every Dim key joins (spread across the Facts key space).
      d->db->Insert(
             {d->dim,
              {Value("k" + std::to_string(i * (kFactsRows / kDimRows)))}})
          .value();
    }
    d->db->WarmIndexes();
    return true;
  }();
  (void)initialized;
  return data;
}

/// Low-selectivity join for the semi-join reduction: both sides large, the
/// key overlap tiny, so the reduced root scan visits a handful of rows
/// where the unreduced one visits every Fact.
struct SemiJoinData {
  relational::Catalog catalog;
  std::unique_ptr<relational::Database> db;
};

const SemiJoinData& SemiJoin() {
  static SemiJoinData data;
  static const bool initialized = [] {
    SemiJoinData* d = &data;
    auto facts = *d->catalog.AddRelation("Facts", {"key", "val"});
    auto big = *d->catalog.AddRelation("Big", {"key"});
    d->db = std::make_unique<relational::Database>(&d->catalog);
    using relational::Value;
    for (size_t i = 0; i < 20'000; ++i) {
      d->db->Insert({facts, {Value("f" + std::to_string(i)), Value("v")}})
          .value();
    }
    for (size_t i = 0; i < 30'000; ++i) {
      d->db->Insert({big, {Value("b" + std::to_string(i))}}).value();
    }
    for (size_t i = 0; i < 10; ++i) {  // The only joinable keys.
      std::string shared = "s" + std::to_string(i);
      d->db->Insert({facts, {Value(shared), Value("v")}}).value();
      d->db->Insert({big, {Value(shared)}}).value();
    }
    d->db->WarmIndexes();
    return true;
  }();
  (void)initialized;
  return data;
}

/// The plan's atom order as a compact label ("Dim Facts"), embedded into
/// the benchmark JSON so BENCH_optimizer.json records what each engine ran.
std::string PlanOrderLabel(const query::CQuery& q,
                           const relational::Database& db, EvalMode mode) {
  query::ColumnStats stats(&db);
  query::Planner planner(&db, &stats);
  query::Plan plan = planner.MakePlan(
      q, query::Assignment(q.num_vars(), &db.dict()),
      mode == EvalMode::kLegacyGreedy ? EvalMode::kCostBased : mode,
      /*force_predict=*/true);
  std::string label;
  for (const query::PlanStep& s : plan.steps) {
    if (!label.empty()) label += ">";
    label += db.catalog().relation_name(q.atoms()[s.atom].relation);
  }
  if (plan.semijoin) {
    label += " semijoin " + std::to_string(plan.RootCandidateCount()) + "/" +
             std::to_string(plan.root_prefilter);
  }
  return label;
}

size_t TotalRows(const relational::Database& db) {
  size_t rows = 0;
  for (size_t i = 0; i < db.catalog().size(); ++i) {
    rows += db.relation(static_cast<relational::RelationId>(i)).size();
  }
  return rows;
}

void RunEvaluate(benchmark::State& state, const query::CQuery& q,
                 const relational::Database& db, EvalMode mode) {
  query::Evaluator evaluator(&db);
  evaluator.set_mode(mode);
  size_t answers = 0;
  for (auto _ : state) {
    query::EvalResult result = evaluator.Evaluate(q);
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["tuples"] = static_cast<double>(TotalRows(db));
  state.SetLabel(PlanOrderLabel(q, db, mode));
}

// ---------------------------------------------------------------------------
// Adversarial atom order: legacy greedy vs cost-based plan.
// ---------------------------------------------------------------------------

void BM_AdversarialJoin(benchmark::State& state) {
  const AdversarialData& data = Adversarial();
  auto q = query::ParseQuery(
      "(x) :- Facts(x, 'tag1', 'tag2'), Dim(x).", data.catalog);
  RunEvaluate(state, *q, *data.db,
              static_cast<EvalMode>(state.range(0)));
}
BENCHMARK(BM_AdversarialJoin)
    ->Arg(static_cast<int>(EvalMode::kCostBased))
    ->Arg(static_cast<int>(EvalMode::kLegacyGreedy));

// Same query, worst vs best written order, both under the strict
// parse-order engine: isolates what join order alone is worth, with no
// adaptive rescue at inner levels.
void BM_ParseOrderWorstVsBest(benchmark::State& state) {
  const AdversarialData& data = Adversarial();
  const char* worst = "(x) :- Facts(x, 'tag1', 'tag2'), Dim(x).";
  const char* best = "(x) :- Dim(x), Facts(x, 'tag1', 'tag2').";
  auto q = query::ParseQuery(state.range(0) == 0 ? worst : best,
                             data.catalog);
  RunEvaluate(state, *q, *data.db, EvalMode::kParseOrder);
}
BENCHMARK(BM_ParseOrderWorstVsBest)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Semi-join reduction on a low-selectivity join.
// ---------------------------------------------------------------------------

void BM_SemiJoinReduction(benchmark::State& state) {
  const SemiJoinData& data = SemiJoin();
  auto q = query::ParseQuery("(x) :- Facts(x, y), Big(x).", data.catalog);
  RunEvaluate(state, *q, *data.db,
              static_cast<EvalMode>(state.range(0)));
}
BENCHMARK(BM_SemiJoinReduction)
    ->Arg(static_cast<int>(EvalMode::kCostBased))
    ->Arg(static_cast<int>(EvalMode::kLegacyGreedy));

// ---------------------------------------------------------------------------
// End-to-end workload queries: no regression allowed under the planner.
// ---------------------------------------------------------------------------

const workload::SoccerData& Soccer() {
  static workload::SoccerData data =
      std::move(workload::MakeSoccerData(workload::SoccerParams{})).value();
  return data;
}

void BM_SoccerEvaluate(benchmark::State& state) {
  const workload::SoccerData& data = Soccer();
  auto q = workload::SoccerQuery(static_cast<size_t>(state.range(0)),
                                 *data.catalog);
  RunEvaluate(state, *q, *data.ground_truth,
              static_cast<EvalMode>(state.range(1)));
}
BENCHMARK(BM_SoccerEvaluate)
    ->ArgsProduct({{1, 2, 3},
                   {static_cast<int>(EvalMode::kCostBased),
                    static_cast<int>(EvalMode::kLegacyGreedy)}});

const workload::DbGroupData& DbGroup() {
  static workload::DbGroupData data =
      std::move(workload::MakeDbGroupData(workload::DbGroupParams{})).value();
  return data;
}

void BM_DbGroupEvaluate(benchmark::State& state) {
  const workload::DbGroupData& data = DbGroup();
  const query::CQuery& q =
      data.report_queries[static_cast<size_t>(state.range(0))];
  RunEvaluate(state, q, *data.ground_truth,
              static_cast<EvalMode>(state.range(1)));
}
BENCHMARK(BM_DbGroupEvaluate)
    ->ArgsProduct({{0, 1},
                   {static_cast<int>(EvalMode::kCostBased),
                    static_cast<int>(EvalMode::kLegacyGreedy)}});

}  // namespace
