// Ablation over the Section 7.2 global noise knobs: data cleanliness
// (60%..95%) and noise skewness (0%..100%) of the whole database, cleaned
// through Q3 with the full QOCO configuration. Crowd cost falls as the
// data gets cleaner; the question mix shifts from insertions to deletions
// as skew moves toward "only false tuples".

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/workload/noise.h"
#include "src/workload/soccer.h"

namespace {

using namespace qoco;  // NOLINT(build/namespaces): experiment driver.

}  // namespace

int main() {
  auto data = workload::MakeSoccerData(workload::SoccerParams{});
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto q = workload::SoccerQuery(3, *data->catalog);
  if (!q.ok()) return 1;

  auto run_cell = [&](double cleanliness, double skew) -> int {
    workload::NoiseParams noise;
    noise.cleanliness = cleanliness;
    noise.skew = skew;
    noise.seed = 5;
    auto dirty = workload::MakeDirty(*data->ground_truth, noise);
    if (!dirty.ok()) return 1;
    exp::RunSpec spec;
    spec.query = &*q;
    spec.ground_truth = data->ground_truth.get();
    spec.dirty = &*dirty;
    spec.cleaner.insertion.strategy = cleaning::SplitStrategy::kProvenance;
    spec.seeds = {11, 23};
    auto r = exp::RunExperiment(spec);
    if (!r.ok()) {
      std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%11.0f%% %6.0f%% %11.1f %11.1f %11.1f %9.1f %9.1f %9.1f\n",
                cleanliness * 100, skew * 100, r->verify_answer,
                r->verify_fact, r->filled_vars + r->missing_answer_vars,
                r->wrong_removed, r->missing_added,
                r->final_result_distance);
    return 0;
  };

  std::printf(
      "== Ablation: data cleanliness sweep (Q3, QOCO, skew 50%%) ==\n");
  std::printf("%12s %7s %11s %11s %11s %9s %9s %9s\n", "cleanliness",
              "skew", "verify ans", "verify tup", "fill vars", "removed",
              "added", "residual");
  for (double cleanliness : {0.60, 0.70, 0.80, 0.90, 0.95}) {
    if (run_cell(cleanliness, 0.5) != 0) return 1;
  }

  std::printf(
      "\n== Ablation: noise skewness sweep (Q3, QOCO, cleanliness 80%%) "
      "==\n");
  std::printf("%12s %7s %11s %11s %11s %9s %9s %9s\n", "cleanliness",
              "skew", "verify ans", "verify tup", "fill vars", "removed",
              "added", "residual");
  for (double skew : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    if (run_cell(0.8, skew) != 0) return 1;
  }
  return 0;
}
