file(REMOVE_RECURSE
  "CMakeFiles/split_strategy_test.dir/split_strategy_test.cc.o"
  "CMakeFiles/split_strategy_test.dir/split_strategy_test.cc.o.d"
  "split_strategy_test"
  "split_strategy_test.pdb"
  "split_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
