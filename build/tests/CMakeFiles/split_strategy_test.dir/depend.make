# Empty dependencies file for split_strategy_test.
# This may be replaced when dependencies are built.
