file(REMOVE_RECURSE
  "CMakeFiles/aggregate_fuzz_test.dir/aggregate_fuzz_test.cc.o"
  "CMakeFiles/aggregate_fuzz_test.dir/aggregate_fuzz_test.cc.o.d"
  "aggregate_fuzz_test"
  "aggregate_fuzz_test.pdb"
  "aggregate_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
