# Empty compiler generated dependencies file for aggregate_fuzz_test.
# This may be replaced when dependencies are built.
