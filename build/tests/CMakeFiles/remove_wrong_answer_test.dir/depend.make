# Empty dependencies file for remove_wrong_answer_test.
# This may be replaced when dependencies are built.
