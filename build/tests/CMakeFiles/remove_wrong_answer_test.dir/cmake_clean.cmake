file(REMOVE_RECURSE
  "CMakeFiles/remove_wrong_answer_test.dir/remove_wrong_answer_test.cc.o"
  "CMakeFiles/remove_wrong_answer_test.dir/remove_wrong_answer_test.cc.o.d"
  "remove_wrong_answer_test"
  "remove_wrong_answer_test.pdb"
  "remove_wrong_answer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remove_wrong_answer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
