# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for remove_wrong_answer_test.
