# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for add_missing_answer_test.
