# Empty dependencies file for add_missing_answer_test.
# This may be replaced when dependencies are built.
