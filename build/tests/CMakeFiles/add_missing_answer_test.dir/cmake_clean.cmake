file(REMOVE_RECURSE
  "CMakeFiles/add_missing_answer_test.dir/add_missing_answer_test.cc.o"
  "CMakeFiles/add_missing_answer_test.dir/add_missing_answer_test.cc.o.d"
  "add_missing_answer_test"
  "add_missing_answer_test.pdb"
  "add_missing_answer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/add_missing_answer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
