# Empty dependencies file for fuzz_convergence_test.
# This may be replaced when dependencies are built.
