file(REMOVE_RECURSE
  "CMakeFiles/fuzz_convergence_test.dir/fuzz_convergence_test.cc.o"
  "CMakeFiles/fuzz_convergence_test.dir/fuzz_convergence_test.cc.o.d"
  "fuzz_convergence_test"
  "fuzz_convergence_test.pdb"
  "fuzz_convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
