# Empty compiler generated dependencies file for cleaner_test.
# This may be replaced when dependencies are built.
