file(REMOVE_RECURSE
  "CMakeFiles/deletion_policies_test.dir/deletion_policies_test.cc.o"
  "CMakeFiles/deletion_policies_test.dir/deletion_policies_test.cc.o.d"
  "deletion_policies_test"
  "deletion_policies_test.pdb"
  "deletion_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deletion_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
