# Empty dependencies file for deletion_policies_test.
# This may be replaced when dependencies are built.
