file(REMOVE_RECURSE
  "CMakeFiles/weighted_voting_test.dir/weighted_voting_test.cc.o"
  "CMakeFiles/weighted_voting_test.dir/weighted_voting_test.cc.o.d"
  "weighted_voting_test"
  "weighted_voting_test.pdb"
  "weighted_voting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_voting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
