# Empty dependencies file for weighted_voting_test.
# This may be replaced when dependencies are built.
