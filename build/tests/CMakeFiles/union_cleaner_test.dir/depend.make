# Empty dependencies file for union_cleaner_test.
# This may be replaced when dependencies are built.
