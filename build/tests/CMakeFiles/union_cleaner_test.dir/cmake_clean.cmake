file(REMOVE_RECURSE
  "CMakeFiles/union_cleaner_test.dir/union_cleaner_test.cc.o"
  "CMakeFiles/union_cleaner_test.dir/union_cleaner_test.cc.o.d"
  "union_cleaner_test"
  "union_cleaner_test.pdb"
  "union_cleaner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
