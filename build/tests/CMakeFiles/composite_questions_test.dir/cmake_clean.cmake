file(REMOVE_RECURSE
  "CMakeFiles/composite_questions_test.dir/composite_questions_test.cc.o"
  "CMakeFiles/composite_questions_test.dir/composite_questions_test.cc.o.d"
  "composite_questions_test"
  "composite_questions_test.pdb"
  "composite_questions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_questions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
