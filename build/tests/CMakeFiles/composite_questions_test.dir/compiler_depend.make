# Empty compiler generated dependencies file for composite_questions_test.
# This may be replaced when dependencies are built.
