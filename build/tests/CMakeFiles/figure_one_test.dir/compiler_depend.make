# Empty compiler generated dependencies file for figure_one_test.
# This may be replaced when dependencies are built.
