file(REMOVE_RECURSE
  "CMakeFiles/figure_one_test.dir/figure_one_test.cc.o"
  "CMakeFiles/figure_one_test.dir/figure_one_test.cc.o.d"
  "figure_one_test"
  "figure_one_test.pdb"
  "figure_one_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_one_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
