# Empty dependencies file for csv_cleaning_cli.
# This may be replaced when dependencies are built.
