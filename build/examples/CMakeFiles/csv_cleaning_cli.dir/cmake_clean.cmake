file(REMOVE_RECURSE
  "CMakeFiles/csv_cleaning_cli.dir/csv_cleaning_cli.cpp.o"
  "CMakeFiles/csv_cleaning_cli.dir/csv_cleaning_cli.cpp.o.d"
  "csv_cleaning_cli"
  "csv_cleaning_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_cleaning_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
