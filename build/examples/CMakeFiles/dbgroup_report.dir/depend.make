# Empty dependencies file for dbgroup_report.
# This may be replaced when dependencies are built.
