file(REMOVE_RECURSE
  "CMakeFiles/dbgroup_report.dir/dbgroup_report.cpp.o"
  "CMakeFiles/dbgroup_report.dir/dbgroup_report.cpp.o.d"
  "dbgroup_report"
  "dbgroup_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgroup_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
