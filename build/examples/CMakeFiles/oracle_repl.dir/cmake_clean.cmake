file(REMOVE_RECURSE
  "CMakeFiles/oracle_repl.dir/oracle_repl.cpp.o"
  "CMakeFiles/oracle_repl.dir/oracle_repl.cpp.o.d"
  "oracle_repl"
  "oracle_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
