# Empty dependencies file for oracle_repl.
# This may be replaced when dependencies are built.
