file(REMOVE_RECURSE
  "CMakeFiles/soccer_cleaning.dir/soccer_cleaning.cpp.o"
  "CMakeFiles/soccer_cleaning.dir/soccer_cleaning.cpp.o.d"
  "soccer_cleaning"
  "soccer_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soccer_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
