file(REMOVE_RECURSE
  "../bench/ablation_deletion_policies"
  "../bench/ablation_deletion_policies.pdb"
  "CMakeFiles/ablation_deletion_policies.dir/ablation_deletion_policies.cc.o"
  "CMakeFiles/ablation_deletion_policies.dir/ablation_deletion_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deletion_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
