# Empty compiler generated dependencies file for ablation_deletion_policies.
# This may be replaced when dependencies are built.
