file(REMOVE_RECURSE
  "../bench/fig3b_insertion_queries"
  "../bench/fig3b_insertion_queries.pdb"
  "CMakeFiles/fig3b_insertion_queries.dir/fig3b_insertion_queries.cc.o"
  "CMakeFiles/fig3b_insertion_queries.dir/fig3b_insertion_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_insertion_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
