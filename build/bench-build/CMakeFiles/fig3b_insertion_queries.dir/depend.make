# Empty dependencies file for fig3b_insertion_queries.
# This may be replaced when dependencies are built.
