# Empty dependencies file for fig3e_insertion_noise.
# This may be replaced when dependencies are built.
