file(REMOVE_RECURSE
  "../bench/fig3e_insertion_noise"
  "../bench/fig3e_insertion_noise.pdb"
  "CMakeFiles/fig3e_insertion_noise.dir/fig3e_insertion_noise.cc.o"
  "CMakeFiles/fig3e_insertion_noise.dir/fig3e_insertion_noise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3e_insertion_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
