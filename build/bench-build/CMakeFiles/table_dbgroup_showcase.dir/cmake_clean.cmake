file(REMOVE_RECURSE
  "../bench/table_dbgroup_showcase"
  "../bench/table_dbgroup_showcase.pdb"
  "CMakeFiles/table_dbgroup_showcase.dir/table_dbgroup_showcase.cc.o"
  "CMakeFiles/table_dbgroup_showcase.dir/table_dbgroup_showcase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_dbgroup_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
