# Empty compiler generated dependencies file for table_dbgroup_showcase.
# This may be replaced when dependencies are built.
