file(REMOVE_RECURSE
  "../bench/ablation_insertion_extension"
  "../bench/ablation_insertion_extension.pdb"
  "CMakeFiles/ablation_insertion_extension.dir/ablation_insertion_extension.cc.o"
  "CMakeFiles/ablation_insertion_extension.dir/ablation_insertion_extension.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_insertion_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
