# Empty dependencies file for ablation_insertion_extension.
# This may be replaced when dependencies are built.
