file(REMOVE_RECURSE
  "../bench/ablation_composite_questions"
  "../bench/ablation_composite_questions.pdb"
  "CMakeFiles/ablation_composite_questions.dir/ablation_composite_questions.cc.o"
  "CMakeFiles/ablation_composite_questions.dir/ablation_composite_questions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_composite_questions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
