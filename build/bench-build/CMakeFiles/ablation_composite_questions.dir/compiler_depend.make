# Empty compiler generated dependencies file for ablation_composite_questions.
# This may be replaced when dependencies are built.
