file(REMOVE_RECURSE
  "../bench/ablation_cleanliness"
  "../bench/ablation_cleanliness.pdb"
  "CMakeFiles/ablation_cleanliness.dir/ablation_cleanliness.cc.o"
  "CMakeFiles/ablation_cleanliness.dir/ablation_cleanliness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cleanliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
