# Empty dependencies file for ablation_cleanliness.
# This may be replaced when dependencies are built.
