file(REMOVE_RECURSE
  "../bench/fig3d_deletion_noise"
  "../bench/fig3d_deletion_noise.pdb"
  "CMakeFiles/fig3d_deletion_noise.dir/fig3d_deletion_noise.cc.o"
  "CMakeFiles/fig3d_deletion_noise.dir/fig3d_deletion_noise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_deletion_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
