# Empty compiler generated dependencies file for fig3d_deletion_noise.
# This may be replaced when dependencies are built.
