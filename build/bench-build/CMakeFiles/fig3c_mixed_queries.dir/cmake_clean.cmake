file(REMOVE_RECURSE
  "../bench/fig3c_mixed_queries"
  "../bench/fig3c_mixed_queries.pdb"
  "CMakeFiles/fig3c_mixed_queries.dir/fig3c_mixed_queries.cc.o"
  "CMakeFiles/fig3c_mixed_queries.dir/fig3c_mixed_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_mixed_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
