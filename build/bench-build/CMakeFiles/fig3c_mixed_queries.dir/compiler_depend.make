# Empty compiler generated dependencies file for fig3c_mixed_queries.
# This may be replaced when dependencies are built.
