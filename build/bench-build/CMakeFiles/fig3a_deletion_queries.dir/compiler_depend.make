# Empty compiler generated dependencies file for fig3a_deletion_queries.
# This may be replaced when dependencies are built.
