file(REMOVE_RECURSE
  "../bench/fig3a_deletion_queries"
  "../bench/fig3a_deletion_queries.pdb"
  "CMakeFiles/fig3a_deletion_queries.dir/fig3a_deletion_queries.cc.o"
  "CMakeFiles/fig3a_deletion_queries.dir/fig3a_deletion_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_deletion_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
