file(REMOVE_RECURSE
  "../bench/fig4_imperfect_crowd"
  "../bench/fig4_imperfect_crowd.pdb"
  "CMakeFiles/fig4_imperfect_crowd.dir/fig4_imperfect_crowd.cc.o"
  "CMakeFiles/fig4_imperfect_crowd.dir/fig4_imperfect_crowd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_imperfect_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
