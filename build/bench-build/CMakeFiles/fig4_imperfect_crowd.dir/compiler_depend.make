# Empty compiler generated dependencies file for fig4_imperfect_crowd.
# This may be replaced when dependencies are built.
