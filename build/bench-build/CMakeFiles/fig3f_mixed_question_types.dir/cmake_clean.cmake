file(REMOVE_RECURSE
  "../bench/fig3f_mixed_question_types"
  "../bench/fig3f_mixed_question_types.pdb"
  "CMakeFiles/fig3f_mixed_question_types.dir/fig3f_mixed_question_types.cc.o"
  "CMakeFiles/fig3f_mixed_question_types.dir/fig3f_mixed_question_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3f_mixed_question_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
