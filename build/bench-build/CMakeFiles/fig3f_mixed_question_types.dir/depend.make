# Empty dependencies file for fig3f_mixed_question_types.
# This may be replaced when dependencies are built.
