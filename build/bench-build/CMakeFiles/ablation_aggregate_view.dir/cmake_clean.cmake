file(REMOVE_RECURSE
  "../bench/ablation_aggregate_view"
  "../bench/ablation_aggregate_view.pdb"
  "CMakeFiles/ablation_aggregate_view.dir/ablation_aggregate_view.cc.o"
  "CMakeFiles/ablation_aggregate_view.dir/ablation_aggregate_view.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggregate_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
