# Empty dependencies file for ablation_aggregate_view.
# This may be replaced when dependencies are built.
