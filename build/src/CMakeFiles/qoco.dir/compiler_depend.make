# Empty compiler generated dependencies file for qoco.
# This may be replaced when dependencies are built.
