
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cleaning/add_missing_answer.cc" "src/CMakeFiles/qoco.dir/cleaning/add_missing_answer.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/add_missing_answer.cc.o.d"
  "/root/repo/src/cleaning/aggregate_cleaner.cc" "src/CMakeFiles/qoco.dir/cleaning/aggregate_cleaner.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/aggregate_cleaner.cc.o.d"
  "/root/repo/src/cleaning/cleaner.cc" "src/CMakeFiles/qoco.dir/cleaning/cleaner.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/cleaner.cc.o.d"
  "/root/repo/src/cleaning/constraint_enforcer.cc" "src/CMakeFiles/qoco.dir/cleaning/constraint_enforcer.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/constraint_enforcer.cc.o.d"
  "/root/repo/src/cleaning/edit.cc" "src/CMakeFiles/qoco.dir/cleaning/edit.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/edit.cc.o.d"
  "/root/repo/src/cleaning/reductions.cc" "src/CMakeFiles/qoco.dir/cleaning/reductions.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/reductions.cc.o.d"
  "/root/repo/src/cleaning/remove_wrong_answer.cc" "src/CMakeFiles/qoco.dir/cleaning/remove_wrong_answer.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/remove_wrong_answer.cc.o.d"
  "/root/repo/src/cleaning/split_strategy.cc" "src/CMakeFiles/qoco.dir/cleaning/split_strategy.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/split_strategy.cc.o.d"
  "/root/repo/src/cleaning/union_cleaner.cc" "src/CMakeFiles/qoco.dir/cleaning/union_cleaner.cc.o" "gcc" "src/CMakeFiles/qoco.dir/cleaning/union_cleaner.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/qoco.dir/common/status.cc.o" "gcc" "src/CMakeFiles/qoco.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/qoco.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/qoco.dir/common/strings.cc.o.d"
  "/root/repo/src/crowd/crowd_panel.cc" "src/CMakeFiles/qoco.dir/crowd/crowd_panel.cc.o" "gcc" "src/CMakeFiles/qoco.dir/crowd/crowd_panel.cc.o.d"
  "/root/repo/src/crowd/enumeration_estimator.cc" "src/CMakeFiles/qoco.dir/crowd/enumeration_estimator.cc.o" "gcc" "src/CMakeFiles/qoco.dir/crowd/enumeration_estimator.cc.o.d"
  "/root/repo/src/crowd/imperfect_oracle.cc" "src/CMakeFiles/qoco.dir/crowd/imperfect_oracle.cc.o" "gcc" "src/CMakeFiles/qoco.dir/crowd/imperfect_oracle.cc.o.d"
  "/root/repo/src/crowd/question_log.cc" "src/CMakeFiles/qoco.dir/crowd/question_log.cc.o" "gcc" "src/CMakeFiles/qoco.dir/crowd/question_log.cc.o.d"
  "/root/repo/src/crowd/simulated_oracle.cc" "src/CMakeFiles/qoco.dir/crowd/simulated_oracle.cc.o" "gcc" "src/CMakeFiles/qoco.dir/crowd/simulated_oracle.cc.o.d"
  "/root/repo/src/exp/experiment.cc" "src/CMakeFiles/qoco.dir/exp/experiment.cc.o" "gcc" "src/CMakeFiles/qoco.dir/exp/experiment.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/qoco.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/qoco.dir/graph/graph.cc.o.d"
  "/root/repo/src/hittingset/hitting_set.cc" "src/CMakeFiles/qoco.dir/hittingset/hitting_set.cc.o" "gcc" "src/CMakeFiles/qoco.dir/hittingset/hitting_set.cc.o.d"
  "/root/repo/src/provenance/whynot.cc" "src/CMakeFiles/qoco.dir/provenance/whynot.cc.o" "gcc" "src/CMakeFiles/qoco.dir/provenance/whynot.cc.o.d"
  "/root/repo/src/provenance/witness.cc" "src/CMakeFiles/qoco.dir/provenance/witness.cc.o" "gcc" "src/CMakeFiles/qoco.dir/provenance/witness.cc.o.d"
  "/root/repo/src/qoco/session.cc" "src/CMakeFiles/qoco.dir/qoco/session.cc.o" "gcc" "src/CMakeFiles/qoco.dir/qoco/session.cc.o.d"
  "/root/repo/src/query/aggregate.cc" "src/CMakeFiles/qoco.dir/query/aggregate.cc.o" "gcc" "src/CMakeFiles/qoco.dir/query/aggregate.cc.o.d"
  "/root/repo/src/query/assignment.cc" "src/CMakeFiles/qoco.dir/query/assignment.cc.o" "gcc" "src/CMakeFiles/qoco.dir/query/assignment.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/CMakeFiles/qoco.dir/query/evaluator.cc.o" "gcc" "src/CMakeFiles/qoco.dir/query/evaluator.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/qoco.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/qoco.dir/query/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/qoco.dir/query/query.cc.o" "gcc" "src/CMakeFiles/qoco.dir/query/query.cc.o.d"
  "/root/repo/src/relational/constraints.cc" "src/CMakeFiles/qoco.dir/relational/constraints.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/constraints.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/CMakeFiles/qoco.dir/relational/csv.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/csv.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/qoco.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/journal.cc" "src/CMakeFiles/qoco.dir/relational/journal.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/journal.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/qoco.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/qoco.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/qoco.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/qoco.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/qoco.dir/relational/value.cc.o.d"
  "/root/repo/src/workload/dbgroup.cc" "src/CMakeFiles/qoco.dir/workload/dbgroup.cc.o" "gcc" "src/CMakeFiles/qoco.dir/workload/dbgroup.cc.o.d"
  "/root/repo/src/workload/figure_one.cc" "src/CMakeFiles/qoco.dir/workload/figure_one.cc.o" "gcc" "src/CMakeFiles/qoco.dir/workload/figure_one.cc.o.d"
  "/root/repo/src/workload/noise.cc" "src/CMakeFiles/qoco.dir/workload/noise.cc.o" "gcc" "src/CMakeFiles/qoco.dir/workload/noise.cc.o.d"
  "/root/repo/src/workload/soccer.cc" "src/CMakeFiles/qoco.dir/workload/soccer.cc.o" "gcc" "src/CMakeFiles/qoco.dir/workload/soccer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
