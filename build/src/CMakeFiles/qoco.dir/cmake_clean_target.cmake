file(REMOVE_RECURSE
  "libqoco.a"
)
