#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "qoco::qoco" for configuration "RelWithDebInfo"
set_property(TARGET qoco::qoco APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qoco::qoco PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqoco.a"
  )

list(APPEND _cmake_import_check_targets qoco::qoco )
list(APPEND _cmake_import_check_files_for_qoco::qoco "${_IMPORT_PREFIX}/lib/libqoco.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
